/**
 * @file
 * The unit of work of a fault-injection campaign (§4 / Tables 6–7 at
 * scale): one (failing netlist × stimulus seed × schedule policy)
 * combination, executed on its own Simulator/AgingLibrary instance.
 *
 * Seeding is hierarchical and collision-free by construction: the
 * campaign seed and the job id feed a splitmix64 stream, and every
 * random decision a job makes (pair/constant/policy sampling, the
 * library's scheduler, the fm_rand input) draws from that stream. A
 * campaign is therefore bit-reproducible at any thread count — results
 * are keyed by job id, never by completion order.
 */
#pragma once

#include <cstdint>

#include "common/error.h"
#include "lift/failure_model.h"
#include "runtime/scheduler.h"
#include "runtime/test_case.h"

namespace vega::campaign {

/** splitmix64 step: advances @p x and returns the next stream value. */
inline uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Root of job @p job_id's private splitmix64 stream. */
inline uint64_t
job_stream(uint64_t campaign_seed, uint64_t job_id)
{
    uint64_t x = campaign_seed ^ (0x517cc1b727220a95ull * (job_id + 1));
    return splitmix64(x);
}

/** Fully-resolved description of one injection job. */
struct JobSpec
{
    uint64_t id = 0;
    /** Index into the campaign's endpoint-pair working set. */
    size_t pair_index = 0;
    lift::FaultConstant constant = lift::FaultConstant::Zero;
    /** Index of `constant` in the campaign's constants list — kept
     *  alongside the value so fault-matrix slots resolve by arithmetic
     *  instead of a linear search per job. */
    size_t constant_index = 0;
    runtime::SchedulePolicy policy = runtime::SchedulePolicy::Sequential;
    /** Dispatch probability for the probabilistic policy. */
    double probability = 1.0;
    /** Seed for the job's scheduler and fm_rand stream. */
    uint64_t seed = 1;
    /** Scheduler slots to spend before declaring the fault undetected. */
    uint64_t max_slots = 0;
};

/** Outcome of one injection job. */
struct JobResult
{
    uint64_t id = 0;
    size_t pair_index = 0;
    lift::FaultConstant constant = lift::FaultConstant::Zero;
    runtime::SchedulePolicy policy = runtime::SchedulePolicy::Sequential;

    /** The suite flagged the fault within the slot budget. */
    bool detected = false;
    runtime::Detection kind = runtime::Detection::None;
    /** Scheduler slots elapsed when the detection fired (1-based). */
    uint64_t slots_to_detect = 0;
    /** Tests actually dispatched by the scheduler. */
    uint64_t tests_dispatched = 0;
    /** Gate-level clock cycles this job simulated. */
    uint64_t sim_cycles = 0;

    /** The fault corrupts the representative workload's output. */
    bool corrupts_workload = false;
    /** Corrupting and undetected: a silent-data-corruption escape. */
    bool escape = false;

    /** Attempts this result took (1 = first try; >1 after retries). */
    uint32_t attempts = 1;
};

/**
 * A job quarantined after exhausting its retry budget: every attempt
 * trapped or threw. The campaign records it instead of aborting — one
 * poisoned job must not sink the other few thousand.
 */
struct FailedJob
{
    uint64_t id = 0;
    size_t pair_index = 0;
    /** Attempts spent before quarantine (0 = characterization failed). */
    uint32_t attempts = 0;
    /** Last attempt's error (code JobFailed unless more specific). */
    VegaError error;
};

} // namespace vega::campaign
