#include "campaign/wave.h"

#include <memory>
#include <optional>

#include "campaign/engine.h"
#include "common/bitvec.h"
#include "common/logging.h"
#include "cpu/batch_backend.h"
#include "cpu/iss.h"
#include "runtime/aging_library.h"
#include "workloads/kernels.h"

namespace vega::campaign {

static_assert(kWaveLanes == size_t(cpu::BatchNetlistEngine::kLanes),
              "wave.h lane count must match the batch engine");

namespace {

/** The transaction a lane has in flight during commit_round(). */
enum class Pending : uint8_t { None, Idle, Op, Read, Clear };

/**
 * Advance one lane's program until it posts exactly one backend
 * transaction (true) or stops without one (false). Mirrors the scalar
 * interleaving: every non-trapping instruction costs the module one
 * clock edge — FU instructions post their own transaction, everything
 * else posts an idle tick after executing architecturally (the tick
 * cannot feed back into ISS state, so executing first is safe).
 * Trapping instructions early-return in the ISS before touching the
 * backend, hence no post.
 */
bool
advance_program(cpu::Iss &iss, cpu::BatchNetlistEngine &eng, int lane,
                ModuleKind kind, Pending &pending)
{
    while (iss.running()) {
        cpu::FuIssue issue = iss.peek_fu_issue(kind);
        switch (issue.kind) {
          case cpu::FuIssue::Kind::None:
            iss.step_one();
            if (!iss.running() &&
                iss.stop_status() == cpu::Iss::Status::Trap)
                return false;
            eng.post_idle(lane);
            pending = Pending::Idle;
            return true;
          case cpu::FuIssue::Kind::Op:
            eng.post_op(lane, issue.op, issue.a, issue.b);
            pending = Pending::Op;
            return true;
          case cpu::FuIssue::Kind::ReadFflags:
            eng.post_read_fflags(lane);
            pending = Pending::Read;
            return true;
          case cpu::FuIssue::Kind::ClearFflags:
            eng.post_clear_fflags(lane);
            pending = Pending::Clear;
            return true;
        }
    }
    return false;
}

/** Complete a lane's pending transaction after commit_round(). */
void
inject(cpu::Iss &iss, cpu::BatchNetlistEngine &eng, int lane,
       Pending &pending)
{
    switch (pending) {
      case Pending::None:
      case Pending::Idle:
        // Idle instructions already executed in advance_program().
        break;
      case Pending::Op:
      case Pending::Read:
        iss.step_one(&eng.result(lane));
        break;
      case Pending::Clear: {
        // csrw fflags,x0 has no architectural result to consume; the
        // injected value only satisfies the split-transaction protocol.
        cpu::FuBackend::FuResult r{};
        iss.step_one(&r);
        break;
      }
    }
    pending = Pending::None;
}

/** Enable lane @p lane's fault and seed its fm_rand stream. */
void
bind_lane_fault(const WaveContext &ctx, cpu::BatchNetlistEngine &eng,
                int lane, size_t bank_index, uint64_t seed)
{
    VEGA_CHECK(bank_index < ctx.num_faults, "bank index out of range");
    BitVec en(ctx.num_faults);
    en.set(bank_index, true);
    eng.set_lane_bus("fm_en", lane, en);
    eng.configure_lane_random(lane, (*ctx.fault_random)[bank_index] != 0,
                              seed);
}

} // namespace

std::vector<char>
characterize_wave(const WaveContext &ctx,
                  const std::vector<std::pair<size_t, uint64_t>> &faults)
{
    VEGA_CHECK(ctx.tape && ctx.fault_random, "wave context incomplete");
    VEGA_CHECK(faults.size() <= size_t(cpu::BatchNetlistEngine::kLanes),
               "characterization wave exceeds lane count");
    const workloads::Kernel &kernel = representative_kernel(ctx.kind);
    cpu::BatchNetlistEngine eng(ctx.kind, ctx.tape);

    const size_t n = faults.size();
    std::vector<char> corrupts(n, 0);
    std::vector<std::unique_ptr<cpu::Iss>> iss(n);
    std::vector<Pending> pending(n, Pending::None);
    for (size_t i = 0; i < n; ++i) {
        bind_lane_fault(ctx, eng, int(i), faults[i].first,
                        faults[i].second);
        cpu::IssConfig cfg;
        cfg.max_instructions = kWorkloadWatchdog;
        iss[i] = std::make_unique<cpu::Iss>(kernel.program, cfg);
    }

    while (true) {
        for (size_t i = 0; i < n; ++i) {
            if (!iss[i])
                continue;
            if (!advance_program(*iss[i], eng, int(i), ctx.kind,
                                 pending[i])) {
                // Same verdict as scalar workload_corrupts(): any
                // non-clean stop, or a deviated stored checksum.
                corrupts[i] =
                    iss[i]->stop_status() != cpu::Iss::Status::Halted ||
                    iss[i]->read_u32(workloads::kChecksumAddr) !=
                        kernel.expected_checksum;
                iss[i].reset();
            }
        }
        if (!eng.has_posts())
            break;
        eng.commit_round();
        for (size_t i = 0; i < n; ++i)
            if (iss[i] && pending[i] != Pending::None)
                inject(*iss[i], eng, int(i), pending[i]);
    }
    return corrupts;
}

namespace {

/** One injection episode's private state within a wave. */
struct Lane
{
    const WaveJob *job = nullptr;
    std::optional<runtime::AgingLibrary> lib;
    std::unique_ptr<cpu::Iss> iss;
    uint64_t next_slot = 0; ///< next scheduler slot to claim
    uint64_t cur_slot = 0;  ///< slot of the test in flight
    size_t cur_test = 0;    ///< suite index of the test in flight
    uint64_t tags_seen = 0; ///< dbg-tag mismatches acknowledged so far
    Pending pending = Pending::None;
    bool done = false;
    JobResult res;
};

/** Claim scheduler slots until a test dispatches; false = budget out. */
bool
start_test(const WaveContext &ctx, Lane &ln)
{
    while (ln.next_slot < ln.job->spec.max_slots) {
        uint64_t slot = ln.next_slot++;
        auto idx = ln.lib->schedule_next();
        if (!idx)
            continue;
        ln.cur_slot = slot;
        ln.cur_test = *idx;
        cpu::IssConfig cfg;
        cfg.max_instructions = kTestWatchdog;
        ln.iss = std::make_unique<cpu::Iss>((*ctx.suite)[*idx].program,
                                            cfg);
        return true;
    }
    return false;
}

void
finish_lane(Lane &ln, const cpu::BatchNetlistEngine &eng, int li)
{
    ln.res.tests_dispatched = ln.lib->runs();
    ln.res.sim_cycles = eng.cycles(li);
    ln.res.corrupts_workload = ln.job->corrupts;
    ln.res.escape = ln.job->corrupts && !ln.res.detected;
    ln.done = true;
}

/**
 * Drive lane @p li until it posts a transaction or its job completes.
 * The slot loop, detection mapping, and tag accounting replicate
 * run_job() + NetlistEngine::run() exactly.
 */
void
advance_lane(const WaveContext &ctx, cpu::BatchNetlistEngine &eng, int li,
             Lane &ln)
{
    for (;;) {
        if (!ln.iss) {
            if (start_test(ctx, ln))
                continue;
            finish_lane(ln, eng, li);
            return;
        }
        if (ln.iss->running()) {
            if (advance_program(*ln.iss, eng, li, ctx.kind, ln.pending))
                return;
            // Stopped without posting (trap, or watchdog checked before
            // the step): fall through to the end-of-test mapping.
        }
        auto status = ln.iss->stop_status();
        runtime::Detection det = runtime::Detection::None;
        if (status != cpu::Iss::Status::Halted)
            det = runtime::Detection::Stall;
        else if (ln.iss->reg(31) != 0)
            det = runtime::Detection::Mismatch;
        else if (eng.tag_mismatches(li) > ln.tags_seen)
            det = runtime::Detection::TagAnomaly;
        ln.tags_seen = eng.tag_mismatches(li);
        ln.lib->record_result(ln.cur_test, det);
        ln.iss.reset();
        if (det != runtime::Detection::None) {
            ln.res.detected = true;
            ln.res.kind = det;
            ln.res.slots_to_detect = ln.cur_slot + 1;
            finish_lane(ln, eng, li);
            return;
        }
    }
}

} // namespace

std::vector<JobResult>
run_wave(const WaveContext &ctx, const std::vector<WaveJob> &jobs)
{
    VEGA_CHECK(ctx.tape && ctx.fault_random, "wave context incomplete");
    VEGA_CHECK(ctx.suite && !ctx.suite->empty(),
               "wave needs a non-empty suite");
    VEGA_CHECK(jobs.size() <= size_t(cpu::BatchNetlistEngine::kLanes),
               "injection wave exceeds lane count");
    cpu::BatchNetlistEngine eng(ctx.kind, ctx.tape);

    std::vector<Lane> lanes(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        Lane &ln = lanes[i];
        ln.job = &jobs[i];
        const JobSpec &spec = jobs[i].spec;
        ln.res.id = spec.id;
        ln.res.pair_index = spec.pair_index;
        ln.res.constant = spec.constant;
        ln.res.policy = spec.policy;
        bind_lane_fault(ctx, eng, int(i), jobs[i].bank_index, spec.seed);
        runtime::AgingLibraryOptions opt;
        opt.policy = spec.policy;
        opt.probability = spec.probability;
        opt.seed = spec.seed;
        ln.lib.emplace(ctx.suite, opt);
    }

    while (true) {
        for (size_t i = 0; i < lanes.size(); ++i)
            if (!lanes[i].done)
                advance_lane(ctx, eng, int(i), lanes[i]);
        if (!eng.has_posts())
            break;
        eng.commit_round();
        for (size_t i = 0; i < lanes.size(); ++i)
            if (!lanes[i].done && lanes[i].pending != Pending::None)
                inject(*lanes[i].iss, eng, int(i), lanes[i].pending);
    }

    std::vector<JobResult> out;
    out.reserve(lanes.size());
    for (Lane &ln : lanes) {
        VEGA_CHECK(ln.done, "wave lane did not complete");
        out.push_back(ln.res);
    }
    return out;
}

} // namespace vega::campaign
