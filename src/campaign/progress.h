/**
 * @file
 * Observability for long campaigns: a thread-safe meter that counts
 * finished jobs and simulated cycles and emits rate-limited progress
 * lines (jobs/s, sims/s, ETA) through a pluggable sink, so a
 * million-job campaign is never a silent black box.
 *
 * The meter is pure bookkeeping on the side: nothing in a
 * CampaignReport's deterministic fields ever comes from it.
 */
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

namespace vega::campaign {

class ProgressMeter
{
  public:
    /** Receives one rendered progress line (no trailing newline). */
    using Sink = std::function<void(const std::string &)>;

    /**
     * @param total_jobs jobs the campaign will run (for % and ETA)
     * @param interval   minimum spacing between emitted lines;
     *                   zero emits on every completion
     * @param sink       line consumer; null ⇒ stderr
     */
    explicit ProgressMeter(uint64_t total_jobs,
                           std::chrono::milliseconds interval =
                               std::chrono::milliseconds(2000),
                           Sink sink = nullptr);

    /** Record one finished job; may emit a progress line. */
    void job_done(uint64_t sim_cycles);

    /** Emit the final summary line unconditionally. */
    void finish();

    uint64_t jobs_done() const;
    uint64_t sim_cycles() const;
    double elapsed_seconds() const;
    /** Completed jobs per wall second so far. */
    double jobs_per_sec() const;
    /** Simulated gate-level cycles per wall second so far. */
    double sims_per_sec() const;

  private:
    std::string render_line() const; ///< callers hold mu_

    using Clock = std::chrono::steady_clock;

    mutable std::mutex mu_;
    uint64_t total_;
    std::chrono::milliseconds interval_;
    Sink sink_;
    Clock::time_point start_;
    Clock::time_point last_emit_;
    uint64_t done_ = 0;
    uint64_t cycles_ = 0;
    bool final_emitted_ = false;
};

} // namespace vega::campaign
