/**
 * @file
 * Streaming shard-journal aggregator with end-to-end integrity.
 *
 * The merge point is where a corrupted worker could silently poison
 * fleet statistics — ironic failure mode for an SDC detector — so
 * nothing is trusted on ingest. For every shard journal the
 * aggregator verifies, in order:
 *
 *  1. per-record CRC32C and the rolling whole-file trailer checksum
 *     (read_journal with require_trailer: a torn or bit-flipped
 *     record is JournalRecordCorrupt, a doctored or stale trailer is
 *     JournalTrailerMismatch, a missing trailer — shard killed
 *     mid-run and never resumed — is ShardIncomplete);
 *  2. that all shards fingerprint the *same campaign* (same module,
 *     seed, job count, shard split) — JournalMismatch otherwise;
 *  3. that the shard set is exactly {0..N-1}, no gaps, no duplicates;
 *  4. that every record's job id belongs to the shard that recorded
 *     it (id % N == K), appears exactly once fleet-wide, and that
 *     all num_jobs ids are accounted for — duplicates and cross-shard
 *     transplants are JournalRecordCorrupt naming both shards, gaps
 *     are ShardIncomplete naming the shard and job id.
 *
 * Only then are the records folded into a CampaignReport — which, by
 * the shard partition contract (shard.h), is byte-identical to the
 * report of a single-process run. The verification evidence survives
 * as an IntegrityManifest: per-shard record counts, checksums, and
 * verdicts, serialized alongside the report.
 */
#pragma once

#include <string>
#include <vector>

#include "campaign/journal.h"
#include "campaign/report.h"
#include "common/error.h"

namespace vega::campaign {

/** What aggregation established about one shard journal. */
struct ShardVerdict
{
    uint64_t shard_id = 0;
    std::string path;
    uint64_t completed = 0; ///< job records
    uint64_t failed = 0;    ///< failed (quarantine) records
    /** Rolling CRC32C the trailer pinned and the reader re-derived. */
    uint32_t crc = 0;
    /** Every integrity check passed for this shard. */
    bool verified = false;
    /** "ok", or what went wrong (also carried by the VegaError). */
    std::string detail = "ok";
};

/** Fleet-level integrity evidence emitted beside the merged report. */
struct IntegrityManifest
{
    uint64_t num_shards = 0;
    uint64_t num_jobs = 0;
    uint64_t total_completed = 0;
    uint64_t total_failed = 0;
    /** All shards verified and the job-id space is exactly covered. */
    bool ok = false;
    std::vector<ShardVerdict> shards;

    std::string to_json() const;
};

struct AggregateResult
{
    CampaignReport report;
    IntegrityManifest manifest;
};

/**
 * Merge the given shard journals. Any integrity failure aborts the
 * merge with a structured error naming the offending shard (and
 * record, where one is at fault) — a corrupted shard is never
 * silently folded into fleet statistics.
 */
Expected<AggregateResult>
aggregate_shards(const std::vector<std::string> &journal_paths);

/** Discover shard journals in @p dir (shard.h naming) and merge. */
Expected<AggregateResult>
aggregate_shard_dir(const std::string &dir);

} // namespace vega::campaign
