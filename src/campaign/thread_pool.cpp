#include "campaign/thread_pool.h"

#include "obs/metrics.h"

namespace vega::campaign {

namespace {

/** Which pool (and worker slot) the current thread belongs to. */
thread_local const ThreadPool *tl_pool = nullptr;
thread_local size_t tl_worker = 0;

obs::Gauge &
queue_depth_gauge()
{
    static obs::Gauge &g = obs::gauge("campaign.queue_depth");
    return g;
}

} // namespace

ThreadPool::ThreadPool(size_t num_threads)
{
    if (num_threads == 0) {
        num_threads = std::thread::hardware_concurrency();
        if (num_threads == 0)
            num_threads = 1;
    }
    queues_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i)
        queues_.push_back(std::make_unique<WorkerQueue>());
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i)
        workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

int
ThreadPool::current_worker()
{
    return tl_pool ? int(tl_worker) : -1;
}

void
ThreadPool::submit(std::function<void()> task)
{
    size_t wid = tl_pool == this ? tl_worker
                                 : rr_.fetch_add(1) % queues_.size();
    // Count before pushing so a worker can never decrement queued_
    // below the number of visible tasks.
    pending_.fetch_add(1);
    uint64_t q = queued_.fetch_add(1) + 1;
    uint64_t peak = peak_queued_.load(std::memory_order_relaxed);
    while (q > peak && !peak_queued_.compare_exchange_weak(peak, q))
        ;
    queue_depth_gauge().record_max(int64_t(q));
    {
        std::lock_guard<std::mutex> lk(queues_[wid]->mu);
        queues_[wid]->tasks.push_back(std::move(task));
    }
    // Empty critical section: orders the queued_ increment against a
    // worker that checked the wait predicate and is about to sleep, so
    // the notify below can never be lost.
    {
        std::lock_guard<std::mutex> lk(mu_);
    }
    work_cv_.notify_one();
}

bool
ThreadPool::take_task(size_t wid, std::function<void()> &out)
{
    {
        WorkerQueue &own = *queues_[wid];
        std::lock_guard<std::mutex> lk(own.mu);
        if (!own.tasks.empty()) {
            out = std::move(own.tasks.back());
            own.tasks.pop_back();
            queued_.fetch_sub(1);
            return true;
        }
    }
    for (size_t i = 1; i < queues_.size(); ++i) {
        WorkerQueue &victim = *queues_[(wid + i) % queues_.size()];
        std::lock_guard<std::mutex> lk(victim.mu);
        if (!victim.tasks.empty()) {
            out = std::move(victim.tasks.front());
            victim.tasks.pop_front();
            queued_.fetch_sub(1);
            steals_.fetch_add(1);
            static obs::Counter &steal_counter =
                obs::counter("campaign.steals");
            steal_counter.inc();
            return true;
        }
    }
    return false;
}

void
ThreadPool::worker_loop(size_t wid)
{
    tl_pool = this;
    tl_worker = wid;
    for (;;) {
        std::function<void()> task;
        if (take_task(wid, task)) {
            task();
            executed_.fetch_add(1);
            // Publish completion; wake wait_idle() only on the last
            // task, and a sleeping sibling only when a finished task
            // spawned new work.
            if (pending_.fetch_sub(1) == 1) {
                std::lock_guard<std::mutex> lk(mu_);
                idle_cv_.notify_all();
            }
            if (queued_.load() > 0)
                work_cv_.notify_one();
        } else {
            std::unique_lock<std::mutex> lk(mu_);
            if (stop_)
                return;
            work_cv_.wait(
                lk, [&] { return stop_ || queued_.load() > 0; });
            if (stop_)
                return;
        }
    }
}

void
ThreadPool::wait_idle()
{
    std::unique_lock<std::mutex> lk(mu_);
    idle_cv_.wait(lk, [&] { return pending_.load() == 0; });
}

} // namespace vega::campaign
