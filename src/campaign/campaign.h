/**
 * @file
 * The Monte Carlo fault-injection campaign engine.
 *
 * A campaign takes the artifacts of a Vega workflow run — the lifted
 * endpoint pairs and the generated runtime suite — and fans out over
 * (failing netlist × stimulus seed × schedule policy) jobs on a
 * work-stealing thread pool. A characterization pass builds each
 * unique fault — the logical failure model (§3.3.1) spliced into a
 * copy of the module, shared read-only by all jobs that inject it —
 * and probes whether it silently corrupts a representative workload.
 * Each job then runs the aging library against the failing gate-level
 * netlist on its own Simulator instance and records detection
 * latency; undetected corrupting faults count as SDC escapes.
 *
 * Determinism contract: the campaign seed fully determines every job
 * (pair/constant/policy sampling and all downstream randomness, via
 * per-job splitmix64 streams — see job.h), and results are aggregated
 * by job id. The same seed therefore yields a byte-identical
 * CampaignReport (timing excluded) at any thread count.
 */
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "campaign/job.h"
#include "campaign/progress.h"
#include "campaign/report.h"
#include "common/error.h"
#include "rtl/module.h"
#include "sta/sta.h"
#include "vega/workflow.h"

namespace vega::campaign {

struct CampaignConfig
{
    uint64_t seed = 1;
    /** Injection jobs to run (pairs are covered round-robin). */
    size_t num_jobs = 256;
    /** Worker threads (0 ⇒ hardware_concurrency). */
    size_t threads = 1;
    /** Fault constants sampled per job (must be non-empty). */
    std::vector<lift::FaultConstant> constants = {
        lift::FaultConstant::Zero, lift::FaultConstant::One};
    /** Schedule policies sampled per job (must be non-empty). */
    std::vector<runtime::SchedulePolicy> policies = {
        runtime::SchedulePolicy::Sequential,
        runtime::SchedulePolicy::Random,
        runtime::SchedulePolicy::Probabilistic};
    /** Dispatch probability for the probabilistic policy. */
    double probability = 0.5;
    /** Per-job scheduler slot budget (0 ⇒ 2 × suite size). */
    uint64_t max_slots = 0;
    /**
     * Execute functional-unit jobs in 64-episode waves on a shared
     * fault-bank tape (campaign/wave.h) instead of one netlist
     * simulation per job. Reports are byte-identical either way — the
     * scalar path remains the semantics oracle — so this is purely a
     * throughput knob. Memory-module campaigns and runs with a
     * job_fault_hook always take the scalar path.
     */
    bool wave_execution = true;
    /** Cap on the endpoint-pair working set. */
    size_t max_pairs = SIZE_MAX;
    /** Emit periodic progress lines to stderr. */
    bool progress = false;
    std::chrono::milliseconds progress_interval{2000};
    /** Override the progress sink (tests use this; implies progress). */
    ProgressMeter::Sink progress_sink;

    // Fleet-mode sharding (shard.h). This process runs only jobs with
    // id % num_shards == shard_id; journals from all shards aggregate
    // to a report byte-identical to an unsharded run.
    uint64_t num_shards = 1;
    uint64_t shard_id = 0;

    // Fault tolerance.
    /** Checkpoint journal path; empty disables journaling. */
    std::string journal_path;
    /**
     * Journal group-commit size: the file is rewritten once per this
     * many settled jobs (and once at the end). 1 = every record, the
     * most crash-safe and the slowest; larger values amortize the
     * O(journal size) rewrite at the cost of a wider crash window.
     */
    size_t journal_flush_every = 16;
    /** Reload an existing journal at journal_path and skip its jobs. */
    bool resume = false;
    /** Attempts per job (fresh seed each retry) before quarantine. */
    int max_job_attempts = 3;
    /**
     * Test hook simulating a mid-campaign kill: stop scheduling new
     * jobs once this many injection jobs have completed (0 = off).
     * The returned report covers only the completed jobs.
     */
    size_t stop_after_jobs = 0;
    /**
     * Test hook run before each job attempt (1-based); a throw counts
     * as that attempt failing, feeding the retry/quarantine path.
     */
    std::function<void(const JobSpec &, int attempt)> job_fault_hook;
    /**
     * Self-kill hook for kill-and-resume testing: raise SIGKILL —
     * a real, uncatchable kill, no destructors, no journal sync —
     * once this many jobs have completed this run (0 = off). The
     * journal is left exactly as a crash would leave it.
     */
    size_t kill_after_jobs = 0;
};

/**
 * Run a campaign injecting @p pairs into @p module and screening each
 * fault with @p suite. @p pairs is typically the lifted working set
 * (wf.lift.pairs), so suite tests' pair_index values line up with the
 * report's per-pair table.
 */
CampaignReport run_campaign(const HwModule &module,
                            const std::vector<sta::EndpointPair> &pairs,
                            const std::vector<runtime::TestCase> &suite,
                            const CampaignConfig &config = {});

/**
 * Non-aborting run_campaign: configuration problems come back as
 * InvalidArgument and journal problems as IoError / JournalCorrupt /
 * JournalMismatch instead of panicking. Jobs that throw are retried
 * with fresh seeds up to max_job_attempts times, then quarantined as
 * failed_jobs entries — a poisoned job never takes the campaign down.
 */
Expected<CampaignReport>
try_run_campaign(const HwModule &module,
                 const std::vector<sta::EndpointPair> &pairs,
                 const std::vector<runtime::TestCase> &suite,
                 const CampaignConfig &config = {});

/** Convenience: campaign over a finished workflow's artifacts. */
CampaignReport run_campaign(const HwModule &module,
                            const vega::WorkflowResult &wf,
                            const CampaignConfig &config = {});

} // namespace vega::campaign
