#include "formal/cnf_encoder.h"

#include "common/logging.h"

namespace vega::formal {

using sat::Lit;
using sat::Var;

void
encode_combinational(const Netlist &nl, sat::Solver &solver,
                     FrameVars &frame, const std::vector<uint8_t> *cell_mask)
{
    auto &vars = frame.net_var;
    VEGA_CHECK(vars.size() == nl.num_nets(), "frame var map size");

    for (CellId c : nl.topo_order()) {
        if (cell_mask && !(*cell_mask)[c])
            continue;
        const Cell &cell = nl.cell(c);
        Var o = solver.new_var();
        vars[cell.out] = o;
        Lit lo(o, false), no(o, true);

        switch (cell.type) {
          case CellType::Const0:
            solver.add_clause(no);
            break;
          case CellType::Const1:
            solver.add_clause(lo);
            break;
          case CellType::Buf: {
            Lit a(vars[cell.in[0]], false);
            solver.add_clause(no, a);
            solver.add_clause(lo, ~a);
            break;
          }
          case CellType::Not: {
            Lit a(vars[cell.in[0]], false);
            solver.add_clause(no, ~a);
            solver.add_clause(lo, a);
            break;
          }
          case CellType::And2: {
            Lit a(vars[cell.in[0]], false), b(vars[cell.in[1]], false);
            solver.add_clause(no, a);
            solver.add_clause(no, b);
            solver.add_clause(lo, ~a, ~b);
            break;
          }
          case CellType::Or2: {
            Lit a(vars[cell.in[0]], false), b(vars[cell.in[1]], false);
            solver.add_clause(lo, ~a);
            solver.add_clause(lo, ~b);
            solver.add_clause(no, a, b);
            break;
          }
          case CellType::Nand2: {
            Lit a(vars[cell.in[0]], false), b(vars[cell.in[1]], false);
            solver.add_clause(lo, a);
            solver.add_clause(lo, b);
            solver.add_clause(no, ~a, ~b);
            break;
          }
          case CellType::Nor2: {
            Lit a(vars[cell.in[0]], false), b(vars[cell.in[1]], false);
            solver.add_clause(no, ~a);
            solver.add_clause(no, ~b);
            solver.add_clause(lo, a, b);
            break;
          }
          case CellType::Xor2: {
            Lit a(vars[cell.in[0]], false), b(vars[cell.in[1]], false);
            solver.add_clause(no, a, b);
            solver.add_clause(no, ~a, ~b);
            solver.add_clause(lo, a, ~b);
            solver.add_clause(lo, ~a, b);
            break;
          }
          case CellType::Xnor2: {
            Lit a(vars[cell.in[0]], false), b(vars[cell.in[1]], false);
            solver.add_clause(lo, a, b);
            solver.add_clause(lo, ~a, ~b);
            solver.add_clause(no, a, ~b);
            solver.add_clause(no, ~a, b);
            break;
          }
          case CellType::Mux2: {
            Lit a(vars[cell.in[0]], false), b(vars[cell.in[1]], false);
            Lit s(vars[cell.in[2]], false);
            // o = s ? b : a
            solver.add_clause(~s, ~b, lo);
            solver.add_clause(~s, b, no);
            solver.add_clause(s, ~a, lo);
            solver.add_clause(s, a, no);
            // Redundant but propagation-helpful clauses.
            solver.add_clause(~a, ~b, lo);
            solver.add_clause(a, b, no);
            break;
          }
          case CellType::Dff:
            panic("encode_combinational hit a DFF");
        }
    }
}

} // namespace vega::formal
