/**
 * @file
 * Suite-level batched cover solving (the one-deepening-loop-per-module
 * refactor of ROADMAP item 4).
 *
 * check_cover() runs one deepening loop per cover target, so a lifted
 * pair-batch with N fault configurations unrolls and solves the same
 * module N times over. CoverBatch registers N activation-literal
 * targets against ONE persistent instance per portfolio worker, deepens
 * the shared frames once, resolves every still-open target at each
 * bound, and retires covered/refuted targets as it goes — the module
 * logic every target shares is encoded once per frame instead of once
 * per (frame × target), and clauses learned refuting one target prune
 * its siblings.
 *
 * Per-target results are byte-identical to looping check_cover:
 * statuses and frames are bound-exhaustion semantics independent of
 * batching, and witnesses are re-derived through the same fresh-
 * instance query (detail::solve_reset_bound) both per-query engines
 * use — optionally against a caller-supplied witness netlist, which is
 * how lift gets traces on its per-config shadow netlists while solving
 * against the multi-config shadow bank. `conflicts`/`wall_seconds` are
 * accounting, not semantics, and do vary with batch shape.
 *
 * A thread portfolio (BmcOptions::portfolio_threads) partitions the
 * targets round-robin across workers, each with its own instances;
 * workers exchange learned clauses after every bound in the canonical
 * (frame, net) form of Unroller::take_shared_clauses(). Sharing and
 * partitioning only move wall time: verdicts at any thread count are
 * identical (and equal to the per-query oracle's).
 *
 * Budgets: run(conflict_budget, wall_budget_seconds) arms ONE wall
 * deadline for the whole run — every query gets only the remaining
 * time, so a batch of N targets honours the budget once rather than N
 * times (the per-call accounting bug when callers looped check_cover).
 * The conflict budget is a shared per-bound pool (see
 * sat::Solver::solve_batch). Targets starved by either budget park
 * with a Timeout result and resume exactly where they stopped on the
 * next run() — the escalation ladder re-runs the batch with grown
 * budgets without discarding frames or learned clauses.
 */
#pragma once

#include <memory>
#include <vector>

#include "formal/bmc.h"

namespace vega::formal {

namespace detail {
class LoopDeadline;
}

/**
 * One cover target of a batch. `target` and `state_equalities` name
 * nets of the batch netlist. When `witness_netlist` is set, Covered
 * traces are re-derived on it (with `witness_target` and
 * `witness_assumes`) instead of the batch netlist — the two must agree
 * on bound-k satisfiability for every k, which holds when the batch
 * netlist embeds the witness netlist's fault cone verbatim (see
 * lift::build_shadow_bank).
 */
struct CoverTargetSpec
{
    NetId target = kInvalidId;
    std::vector<std::pair<NetId, NetId>> state_equalities;
    const Netlist *witness_netlist = nullptr;
    NetId witness_target = kInvalidId;
    std::vector<NetId> witness_assumes;
};

class CoverBatch
{
  public:
    /**
     * @p opts supplies the shared assume nets, frame bound, budgets,
     * k-induction depth and portfolio width; opts.state_equalities is
     * ignored (each target carries its own in its spec).
     */
    CoverBatch(const Netlist &nl, const BmcOptions &opts);
    ~CoverBatch();

    CoverBatch(const CoverBatch &) = delete;
    CoverBatch &operator=(const CoverBatch &) = delete;

    /** Register a target. Must precede the first run(); returns its index. */
    int add_target(CoverTargetSpec spec);

    int num_targets() const;

    /** Run or resume every unsettled target with the opts budgets. */
    void run();

    /** Run or resume under explicit budgets (an escalation rung). */
    void run(int64_t conflict_budget, double wall_budget_seconds);

    /** True once target @p idx has a Covered/Unreachable answer. */
    bool settled(int idx) const;

    /** True when every target is settled. */
    bool all_settled() const;

    /**
     * The target's result: final once settled, otherwise the Timeout
     * state of the most recent run (bound reached, spend so far).
     */
    const BmcResult &result(int idx) const;

  private:
    struct Target;
    struct Worker;
    struct Mailbox;

    void run_worker(Worker &w, int64_t conflict_budget,
                    const detail::LoopDeadline &deadline);

    const Netlist &nl_;
    BmcOptions opts_;
    std::vector<Target> targets_;
    std::vector<std::unique_ptr<Worker>> workers_;
    std::unique_ptr<Mailbox> mailbox_;
    int runs_ = 0;
};

} // namespace vega::formal
