/**
 * @file
 * Tseitin encoding of one combinational frame of a netlist into CNF.
 *
 * The BMC unroller instantiates one frame per cycle, wiring DFF outputs
 * of frame f to DFF inputs of frame f-1 by variable aliasing (no extra
 * clauses), so a k-cycle unrolling is a single CNF over k·|nets| vars.
 */
#pragma once

#include <vector>

#include "netlist/netlist.h"
#include "sat/solver.h"

namespace vega::formal {

/** Net-to-variable map for one time frame. */
struct FrameVars
{
    std::vector<sat::Var> net_var; ///< indexed by NetId
};

/**
 * Encode the combinational logic of @p nl into @p solver for one frame.
 *
 * DFF output variables and primary-input variables must already be set
 * in @p frame (the unroller decides whether they are reset constants,
 * free variables, or aliases of the previous frame); this function adds
 * fresh variables and clauses for every combinational cell output.
 *
 * @p cell_mask, when non-null, restricts encoding to cells with a
 * non-zero mask byte (indexed by CellId); masked-out cells leave their
 * output's net_var at -1. The caller must pass a *support-closed* mask:
 * every input net of an encoded cell is a primary input, the output of
 * another encoded cell, or a DFF output the unroller defined. Cone-of-
 * influence reduction in the batched cover engine relies on this to
 * skip logic no open target can observe.
 */
void encode_combinational(const Netlist &nl, sat::Solver &solver,
                          FrameVars &frame,
                          const std::vector<uint8_t> *cell_mask = nullptr);

} // namespace vega::formal
