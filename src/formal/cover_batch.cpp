#include "formal/cover_batch.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <thread>

#include "common/logging.h"
#include "formal/bmc_internal.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vega::formal {

using sat::Lit;

namespace {

/**
 * Support closure of @p seeds: the cell mask containing every cell
 * whose output can influence any seed net, crossing DFFs into their D
 * (and clock/enable) cones. The result is frame-uniform and
 * support-closed, which is exactly what Unroller::set_cell_mask
 * requires; recomputing it from fewer seeds yields a subset, so
 * dropping a retired target's cone is always a legal shrink.
 */
std::vector<uint8_t>
support_closure(const Netlist &nl, const std::vector<NetId> &seeds)
{
    std::vector<uint8_t> mask(nl.num_cells(), 0);
    std::vector<uint8_t> net_seen(nl.num_nets(), 0);
    std::vector<NetId> work;
    for (NetId n : seeds) {
        if (n != kInvalidId && !net_seen[n]) {
            net_seen[n] = 1;
            work.push_back(n);
        }
    }
    while (!work.empty()) {
        NetId n = work.back();
        work.pop_back();
        CellId c = nl.net(n).driver;
        if (c == kInvalidId || mask[c])
            continue;
        mask[c] = 1;
        const Cell &cell = nl.cell(c);
        for (int i = 0; i < cell.num_inputs(); ++i) {
            NetId in = cell.in[i];
            if (in != kInvalidId && !net_seen[in]) {
                net_seen[in] = 1;
                work.push_back(in);
            }
        }
    }
    return mask;
}

} // namespace

/** Per-target solving state. `result` is this run's answer (final once
 *  phase == Settled); the phase cursors make a starved run resumable. */
struct CoverBatch::Target
{
    enum class Phase { Bounded, Free, Induction, Settled };

    CoverTargetSpec spec;
    Phase phase = Phase::Bounded;
    /** Phase 1: next reset-instance bound to query. */
    int next_bound = 1;
    /** Phase 3: next induction depth to query. */
    int induction_next = 2;
    /** Starved this run; skipped until the next (escalated) run. */
    bool parked = false;
    /** Cached free-instance activation literals (allocated once). */
    Lit eq_act;
    Lit clause_act;
    bool free_acts_made = false;
    BmcResult result;
};

/** One portfolio worker: its target slice plus its two persistent
 *  instances (reset deepening, free-state/induction). */
struct CoverBatch::Worker
{
    int id = 0;
    std::vector<int> targets; ///< indices into targets_
    std::unique_ptr<Unroller> reset_unroller;
    std::unique_ptr<Unroller> free_unroller;
    /** Bounded-target count the current reset cell mask was built for;
     *  the mask is recomputed (shrunk) whenever this drops. */
    int mask_targets = -1;
    /** Mailbox read cursors (entries before these are already imported). */
    size_t reset_cursor = 0;
    size_t free_cursor = 0;
};

/**
 * Cross-worker clause exchange. Two channels because the instances are
 * not interchangeable: clauses learned on a reset instance may depend
 * on the DFF init units and are only valid on other reset instances;
 * free-instance clauses are only shared with other free instances.
 * Entries are append-only under the mutex; each worker keeps a cursor
 * per channel and skips clauses it published itself.
 */
struct CoverBatch::Mailbox
{
    std::mutex mu;
    std::vector<std::pair<int, Unroller::SharedClause>> reset_entries;
    std::vector<std::pair<int, Unroller::SharedClause>> free_entries;

    void publish(int worker, std::vector<Unroller::SharedClause> clauses,
                 bool free_channel)
    {
        if (clauses.empty())
            return;
        std::lock_guard<std::mutex> lock(mu);
        auto &chan = free_channel ? free_entries : reset_entries;
        for (auto &c : clauses)
            chan.emplace_back(worker, std::move(c));
    }

    void exchange(int worker, size_t &cursor, Unroller &unroll,
                  bool free_channel)
    {
        std::vector<Unroller::SharedClause> fresh;
        {
            std::lock_guard<std::mutex> lock(mu);
            const auto &chan = free_channel ? free_entries : reset_entries;
            for (size_t i = cursor; i < chan.size(); ++i)
                if (chan[i].first != worker)
                    fresh.push_back(chan[i].second);
            cursor = chan.size();
        }
        if (!fresh.empty())
            unroll.import_shared_clauses(fresh);
    }
};

CoverBatch::CoverBatch(const Netlist &nl, const BmcOptions &opts)
    : nl_(nl), opts_(opts), mailbox_(std::make_unique<Mailbox>())
{
}

CoverBatch::~CoverBatch() = default;

int
CoverBatch::add_target(CoverTargetSpec spec)
{
    VEGA_CHECK(runs_ == 0, "add_target after the first run");
    VEGA_CHECK(spec.target != kInvalidId, "invalid batch cover target");
    static obs::Counter &batch_targets = obs::counter("bmc.batch_targets");
    batch_targets.inc();
    Target t;
    t.spec = std::move(spec);
    targets_.push_back(std::move(t));
    return static_cast<int>(targets_.size()) - 1;
}

int
CoverBatch::num_targets() const
{
    return static_cast<int>(targets_.size());
}

bool
CoverBatch::settled(int idx) const
{
    return targets_[idx].phase == Target::Phase::Settled;
}

bool
CoverBatch::all_settled() const
{
    for (const Target &t : targets_)
        if (t.phase != Target::Phase::Settled)
            return false;
    return true;
}

const BmcResult &
CoverBatch::result(int idx) const
{
    return targets_[idx].result;
}

void
CoverBatch::run()
{
    run(opts_.conflict_budget, opts_.wall_budget_seconds);
}

void
CoverBatch::run(int64_t conflict_budget, double wall_budget_seconds)
{
    VEGA_SPAN("bmc.batch_run");
    if (targets_.empty())
        return;

    if (runs_ == 0) {
        // Partition targets round-robin across the portfolio workers.
        int w = std::max(1, opts_.portfolio_threads);
        w = std::min(w, static_cast<int>(targets_.size()));
        for (int i = 0; i < w; ++i) {
            auto worker = std::make_unique<Worker>();
            worker->id = i;
            workers_.push_back(std::move(worker));
        }
        for (size_t i = 0; i < targets_.size(); ++i)
            workers_[i % workers_.size()]->targets.push_back(
                static_cast<int>(i));
    }
    ++runs_;

    // Fresh per-run accounting: unsettled targets restart their spend
    // (each run reports its own slice, like CoverSession::run), and a
    // settled target's replay charges nothing.
    for (Target &t : targets_) {
        if (t.phase == Target::Phase::Settled) {
            t.result.conflicts = 0;
            t.result.wall_seconds = 0.0;
        } else {
            t.result = BmcResult{};
            t.parked = false;
        }
    }

    // Prime the lazily-built topo/reader caches of every netlist the
    // workers will read concurrently: Netlist::topo_order() mutates
    // them on first use, which must happen-before the thread spawns.
    if (workers_.size() > 1) {
        nl_.topo_order();
        for (const Target &t : targets_)
            if (t.spec.witness_netlist)
                t.spec.witness_netlist->topo_order();
    }

    detail::LoopDeadline deadline(wall_budget_seconds);
    if (workers_.size() == 1) {
        run_worker(*workers_[0], conflict_budget, deadline);
        return;
    }
    std::vector<std::thread> threads;
    threads.reserve(workers_.size());
    for (auto &w : workers_)
        threads.emplace_back([&, worker = w.get()] {
            run_worker(*worker, conflict_budget, deadline);
        });
    for (auto &th : threads)
        th.join();
}

void
CoverBatch::run_worker(Worker &w, int64_t conflict_budget,
                       const detail::LoopDeadline &deadline)
{
    static obs::Counter &retired =
        obs::counter("bmc.targets_retired_per_bound");
    static obs::Counter &kinduction_proofs =
        obs::counter("bmc.kinduction_proofs");

    const bool sharing = workers_.size() > 1;
    // The whole-worklist conflict pool handed to one solve_batch call:
    // every due set shares per_query × count conflicts, so an easy
    // set's leftovers flow to a hard one instead of being forfeited.
    auto pooled = [&](size_t due) {
        return conflict_budget < 0
                   ? int64_t{-1}
                   : conflict_budget * static_cast<int64_t>(due);
    };
    auto settle = [](Target &t, BmcStatus status) {
        t.result.status = status;
        t.phase = Target::Phase::Settled;
        detail::count_outcome(status);
    };
    auto park = [](Target &t, int frames) {
        t.result.status = BmcStatus::Timeout;
        t.result.frames = frames;
        t.parked = true;
        detail::count_outcome(BmcStatus::Timeout);
    };

    // ---- Phase 1: bounded deepening on the shared reset instance ----
    //
    // The worker's still-bounded targets march through the bounds in
    // lockstep: frames are appended once per bound (under a cell mask
    // covering exactly the live targets' cones) and one solve_batch
    // call resolves every target due at that bound.
    auto bounded_count = [&] {
        int n = 0;
        for (int ti : w.targets)
            if (targets_[ti].phase == Target::Phase::Bounded)
                ++n;
        return n;
    };
    for (int k = 1; k <= opts_.max_frames; ++k) {
        std::vector<int> due;
        for (int ti : w.targets) {
            const Target &t = targets_[ti];
            if (t.phase == Target::Phase::Bounded && !t.parked &&
                t.next_bound == k)
                due.push_back(ti);
        }
        if (due.empty())
            continue;
        VEGA_SPAN("bmc.batch_deepen");

        // (Re)build the cell mask when the live-target set shrank. The
        // mask must keep every *bounded* target's cone — parked ones
        // included, since a later run resumes them on this instance —
        // plus the assume cones add_frame pins every frame.
        int live = bounded_count();
        if (live != w.mask_targets) {
            std::vector<NetId> seeds = opts_.assumes;
            for (int ti : w.targets)
                if (targets_[ti].phase == Target::Phase::Bounded)
                    seeds.push_back(targets_[ti].spec.target);
            w.mask_targets = live;
            if (!w.reset_unroller) {
                w.reset_unroller = std::make_unique<Unroller>(
                    nl_, /*free_initial=*/false);
                w.reset_unroller->set_assumes(opts_.assumes);
                if (sharing)
                    w.reset_unroller->enable_clause_sharing();
            }
            w.reset_unroller->set_cell_mask(support_closure(nl_, seeds));
        }
        Unroller &unroll = *w.reset_unroller;
        unroll.ensure_frames(k);

        std::vector<std::vector<Lit>> sets;
        sets.reserve(due.size());
        for (int ti : due)
            sets.push_back(
                {unroll.cover_activation(k - 1, targets_[ti].spec.target)});

        if (sharing)
            mailbox_->exchange(w.id, w.reset_cursor, unroll,
                               /*free_channel=*/false);
        sat::SolveLimits limits;
        limits.conflict_budget = pooled(due.size());
        limits.wall_seconds = deadline.remaining();
        auto outcomes = unroll.solver().solve_batch(sets, limits);
        if (sharing)
            mailbox_->publish(w.id, unroll.take_shared_clauses(),
                              /*free_channel=*/false);

        for (size_t d = 0; d < due.size(); ++d) {
            Target &t = targets_[due[d]];
            t.result.conflicts += outcomes[d].conflicts;
            t.result.wall_seconds += outcomes[d].seconds;
            switch (outcomes[d].result) {
              case sat::Solver::Result::Unsat:
                unroll.retire(sets[d][0]);
                t.next_bound = k + 1;
                if (t.next_bound > opts_.max_frames)
                    t.phase = Target::Phase::Free;
                break;
              case sat::Solver::Result::Unknown:
                park(t, k); // resumable: retry bound k next run
                break;
              case sat::Solver::Result::Sat: {
                // Re-derive the witness through the same fresh-instance
                // bound-k query the per-query engines use, on the
                // target's witness netlist — byte-identical waveforms
                // by construction, never the batch instance's model.
                const Netlist *wnl = t.spec.witness_netlist
                                         ? t.spec.witness_netlist
                                         : &nl_;
                NetId wtarget = t.spec.witness_netlist
                                    ? t.spec.witness_target
                                    : t.spec.target;
                BmcOptions wopts = opts_;
                if (t.spec.witness_netlist)
                    wopts.assumes = t.spec.witness_assumes;
                const auto t0 = std::chrono::steady_clock::now();
                auto wres = detail::solve_reset_bound(
                    *wnl, wtarget, wopts, k, conflict_budget,
                    deadline.remaining(), t.result.conflicts,
                    &t.result.trace);
                t.result.wall_seconds += detail::seconds_since(t0);
                if (wres == sat::Solver::Result::Unknown) {
                    park(t, k); // resumable: retry bound k next run
                    break;
                }
                VEGA_CHECK(wres == sat::Solver::Result::Sat,
                           "batch witness vanished at bound ", k);
                t.result.frames = k;
                settle(t, BmcStatus::Covered);
                retired.inc();
                unroll.retire(sets[d][0]);
                break;
              }
            }
        }
    }

    // ---- Phase 2: free-state unreachability on one shared instance ----
    //
    // Each target's shadow-consistency equalities ride behind its own
    // gate literal and its target@0 ∨ target@1 clause behind an
    // activation literal, so the per-target query is the assumption
    // set {gate, clause} — the batched form of check_cover's phase 2.
    std::vector<int> due_free;
    for (int ti : w.targets)
        if (targets_[ti].phase == Target::Phase::Free &&
            !targets_[ti].parked)
            due_free.push_back(ti);
    const int max_depth =
        std::min(opts_.kinduction_frames, opts_.max_frames);
    if (!due_free.empty()) {
        VEGA_SPAN("bmc.unreachability");
        if (!w.free_unroller) {
            w.free_unroller =
                std::make_unique<Unroller>(nl_, /*free_initial=*/true);
            w.free_unroller->set_assumes(opts_.assumes);
            if (sharing)
                w.free_unroller->enable_clause_sharing();
        }
        Unroller &unroll = *w.free_unroller;
        unroll.ensure_frames(2);

        std::vector<std::vector<Lit>> sets;
        sets.reserve(due_free.size());
        for (int ti : due_free) {
            Target &t = targets_[ti];
            if (!t.free_acts_made) {
                t.eq_act =
                    unroll.equality_activation(t.spec.state_equalities);
                t.clause_act = unroll.clause_activation(
                    {{0, t.spec.target}, {1, t.spec.target}});
                t.free_acts_made = true;
            }
            sets.push_back({t.eq_act, t.clause_act});
        }

        if (sharing)
            mailbox_->exchange(w.id, w.free_cursor, unroll,
                               /*free_channel=*/true);
        sat::SolveLimits limits;
        limits.conflict_budget = pooled(due_free.size());
        limits.wall_seconds = deadline.remaining();
        auto outcomes = unroll.solver().solve_batch(sets, limits);
        if (sharing)
            mailbox_->publish(w.id, unroll.take_shared_clauses(),
                              /*free_channel=*/true);

        for (size_t d = 0; d < due_free.size(); ++d) {
            Target &t = targets_[due_free[d]];
            t.result.conflicts += outcomes[d].conflicts;
            t.result.wall_seconds += outcomes[d].seconds;
            switch (outcomes[d].result) {
              case sat::Solver::Result::Unsat:
                t.result.proven_by_induction = true;
                settle(t, BmcStatus::Unreachable);
                unroll.retire(t.eq_act);
                unroll.retire(t.clause_act);
                break;
              case sat::Solver::Result::Unknown:
                park(t, 0); // resumable: re-solve phase 2 next run
                break;
              case sat::Solver::Result::Sat:
                // Inconclusive; the clause act is done either way (the
                // induction queries assume ¬target@j directly), the
                // equality gate keeps serving phase 3.
                unroll.retire(t.clause_act);
                if (max_depth >= 2) {
                    t.phase = Target::Phase::Induction;
                } else {
                    t.result.proven_by_induction = false;
                    t.result.frames = opts_.max_frames;
                    settle(t, BmcStatus::Unreachable);
                    unroll.retire(t.eq_act);
                }
                break;
            }
        }
    }

    // ---- Phase 3: k-induction on the same free-state instance ----
    //
    // The depth-k step query mirrors kinduction_prove(): target low for
    // frames 0..k-1 (assumed directly on the net variables), can it
    // rise at frame k? Unknown falls back to the bounded verdict, as
    // the per-query pass does.
    for (int k = 2; k <= max_depth; ++k) {
        std::vector<int> due;
        for (int ti : w.targets)
            if (targets_[ti].phase == Target::Phase::Induction &&
                targets_[ti].induction_next == k)
                due.push_back(ti);
        if (due.empty())
            continue;
        VEGA_SPAN("bmc.kinduction");
        Unroller &unroll = *w.free_unroller;
        unroll.ensure_frames(k + 1);

        std::vector<std::vector<Lit>> sets;
        sets.reserve(due.size());
        for (int ti : due) {
            Target &t = targets_[ti];
            std::vector<Lit> set{t.eq_act};
            for (int j = 0; j < k; ++j)
                set.emplace_back(unroll.var(j, t.spec.target), true);
            set.push_back(unroll.cover_activation(k, t.spec.target));
            sets.push_back(std::move(set));
        }

        if (sharing)
            mailbox_->exchange(w.id, w.free_cursor, unroll,
                               /*free_channel=*/true);
        sat::SolveLimits limits;
        limits.conflict_budget = pooled(due.size());
        limits.wall_seconds = deadline.remaining();
        auto outcomes = unroll.solver().solve_batch(sets, limits);
        if (sharing)
            mailbox_->publish(w.id, unroll.take_shared_clauses(),
                              /*free_channel=*/true);

        for (size_t d = 0; d < due.size(); ++d) {
            Target &t = targets_[due[d]];
            t.result.conflicts += outcomes[d].conflicts;
            t.result.wall_seconds += outcomes[d].seconds;
            switch (outcomes[d].result) {
              case sat::Solver::Result::Unsat:
                kinduction_proofs.inc();
                t.result.proven_by_induction = true;
                t.result.kinduction_depth = k;
                settle(t, BmcStatus::Unreachable);
                unroll.retire(t.eq_act);
                break;
              case sat::Solver::Result::Sat:
                t.induction_next = k + 1;
                break;
              case sat::Solver::Result::Unknown:
                t.induction_next = max_depth + 1; // starve: bounded verdict
                break;
            }
        }
    }
    for (int ti : w.targets) {
        Target &t = targets_[ti];
        if (t.phase == Target::Phase::Induction &&
            t.induction_next > max_depth) {
            t.result.proven_by_induction = false;
            t.result.kinduction_depth = 0;
            t.result.frames = opts_.max_frames;
            settle(t, BmcStatus::Unreachable);
            w.free_unroller->retire(t.eq_act);
        }
    }
}

} // namespace vega::formal
