/**
 * @file
 * Incremental k-frame unrolling of a sequential netlist into one
 * long-lived SAT instance.
 */
#pragma once

#include <utility>
#include <vector>

#include "formal/cnf_encoder.h"
#include "netlist/netlist.h"
#include "sat/solver.h"

namespace vega::formal {

/**
 * Unrolls a netlist frame by frame into an owned, persistent solver.
 *
 * The unroller is a long-lived object: frames are appended with
 * ensure_frames()/add_frame() and every clause ever added (including
 * the solver's learned clauses) stays valid, so a deepening BMC loop
 * encodes each frame exactly once instead of re-encoding 1+2+…+K
 * frames across bounds.
 *
 * Bound-specific constraints go through *activation literals*: for a
 * cover target at frame k, cover_activation(k, target) allocates a
 * fresh literal `act` and adds the clause `¬act ∨ target@k`, so the
 * bound-k query is `solver().solve({act})` — Unsat under the
 * assumption leaves the instance reusable for bound k+1, and
 * retire(act) (the unit clause `¬act`) permanently satisfies the
 * bound's clause once it is refuted.
 *
 * Frame 0 state is either the reset state (DFF init values as unit
 * clauses) or free variables, optionally with pairwise equality
 * constraints (used to tie shadow-replica registers to their originals
 * in the inductive unreachability check, §3.3.2/§3.3.4).
 *
 * Assume nets (BmcOptions::assumes) are registered once via
 * set_assumes() before the first frame; add_frame() then pins each of
 * them to 1 in every frame it encodes, so the per-frame assume units
 * are part of the frame itself rather than re-added per bound.
 */
class Unroller
{
  public:
    /**
     * @param nl           netlist to unroll
     * @param free_initial frame-0 DFFs unconstrained instead of reset
     * @param state_equalities net pairs forced equal at frame 0
     */
    Unroller(const Netlist &nl, bool free_initial,
             const std::vector<std::pair<NetId, NetId>> &state_equalities = {});

    /**
     * Register the nets pinned to 1 in every frame. Must be called
     * before the first add_frame(); the constraint is permanent, so
     * every query on this unroller shares it.
     */
    void set_assumes(const std::vector<NetId> &assumes);

    /**
     * Restrict frames added *after* this call to cells with a non-zero
     * mask byte (cone-of-influence reduction). The mask must be
     * support-closed (see encode_combinational) and must contain every
     * assume net's cone and every net later queries will reference.
     * Callers may only shrink the mask between frames (the batched
     * engine drops a retired target's cone); growing it would leave
     * earlier frames missing logic the new cone depends on. An empty
     * mask (the default) encodes everything.
     */
    void set_cell_mask(std::vector<uint8_t> mask);

    /** Append one more frame; returns its index. */
    int add_frame();

    /** Append frames until at least @p k exist. */
    void ensure_frames(int k)
    {
        while (num_frames() < k)
            add_frame();
    }

    int num_frames() const { return static_cast<int>(frames_.size()); }

    /**
     * Activation literal for the cover clause `target@frame`: allocates
     * `act` and adds `¬act ∨ target@frame` on first use, and returns
     * the cached literal on repeat calls (so an escalated retry of the
     * same bound reuses the same clause). The frame must already exist.
     */
    sat::Lit cover_activation(int frame, NetId target);

    /**
     * Activation literal for a *disjunctive* cover clause
     * `term_0 ∨ term_1 ∨ …` where each term is net\@frame: adds
     * `¬act ∨ term_0 ∨ …` on first use and returns the cached literal
     * on repeat calls. The batched engine's per-target form of the
     * free-state check's `target@0 ∨ target@1` clause.
     */
    sat::Lit
    clause_activation(const std::vector<std::pair<int, NetId>> &terms);

    /**
     * Activation literal gating a group of frame-0 state equalities:
     * under the returned literal, every (a, b) pair is constrained
     * equal at frame 0; with the literal free the group is vacuous.
     * Lets one free-initial instance carry each batched target's own
     * shadow-consistency strengthening. Frame 0 must already exist and
     * the unroller must be free-initial.
     */
    sat::Lit equality_activation(
        const std::vector<std::pair<NetId, NetId>> &pairs);

    /**
     * Permanently disable an activation literal (unit clause `¬act`),
     * satisfying its cover clause. Call after the bound is refuted so
     * the dead clause cannot pollute later propagation.
     */
    void retire(sat::Lit act) { solver_.add_clause(~act); }

    // ---- portfolio clause sharing ------------------------------------
    //
    // Learned clauses travel between independent unrollers of the same
    // netlist as *canonical* literals `2*(frame*num_nets + net) + sign`.
    // Only clauses whose every variable is a net variable translate
    // (activation and equality-group literals are private to one
    // instance and are dropped at export); a clause mentioning a frame
    // or net the importer has not encoded is skipped. Soundness: a
    // net-variable clause learned by any worker is implied by the
    // frame/assume clauses alone — activation variables only ever
    // weaken them — so every importer's instance already entails it.

    /** Canonical clause form for cross-unroller exchange. */
    using SharedClause = std::vector<int64_t>;

    /**
     * Start exporting learned clauses with size <= @p max_size and
     * LBD <= @p max_lbd for take_shared_clauses().
     */
    void enable_clause_sharing(int max_size = 8, uint32_t max_lbd = 4);

    /** Drain exportable learned clauses in canonical form. */
    std::vector<SharedClause> take_shared_clauses();

    /**
     * Import canonical clauses from a peer unroller of the same
     * netlist; returns how many were accepted (mappable onto frames
     * and nets this instance has encoded).
     */
    size_t import_shared_clauses(const std::vector<SharedClause> &clauses);

    sat::Solver &solver() { return solver_; }

    /** Variable of @p net at @p frame. */
    sat::Var var(int frame, NetId net) const
    {
        return frames_[frame].net_var[net];
    }

    /** Model value of @p net at @p frame (after a Sat result). */
    bool value(int frame, NetId net) const
    {
        return solver_.model_value(var(frame, net));
    }

  private:
    const Netlist &nl_;
    sat::Solver solver_;
    std::vector<FrameVars> frames_;
    bool free_initial_;
    std::vector<std::pair<NetId, NetId>> state_equalities_;
    std::vector<NetId> assumes_;
    std::vector<uint8_t> cell_mask_; ///< empty = encode all cells

    struct CoverAct
    {
        int frame;
        NetId target;
        sat::Lit act;
    };
    std::vector<CoverAct> cover_acts_;

    struct ClauseAct
    {
        std::vector<std::pair<int, NetId>> terms;
        sat::Lit act;
    };
    std::vector<ClauseAct> clause_acts_;

    /** Canonical id per solver var (frame*num_nets + net), or -1 for
     *  private vars (activation literals, equality-group gates). */
    std::vector<int64_t> var_canon_;
    void record_frame_origins(int f);
};

} // namespace vega::formal
