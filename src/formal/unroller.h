/**
 * @file
 * k-frame unrolling of a sequential netlist into a single SAT instance.
 */
#pragma once

#include <utility>
#include <vector>

#include "formal/cnf_encoder.h"
#include "netlist/netlist.h"
#include "sat/solver.h"

namespace vega::formal {

/**
 * Unrolls a netlist frame by frame into an owned solver.
 *
 * Frame 0 state is either the reset state (DFF init values as unit
 * clauses) or free variables, optionally with pairwise equality
 * constraints (used to tie shadow-replica registers to their originals
 * in the inductive unreachability check, §3.3.2/§3.3.4).
 */
class Unroller
{
  public:
    /**
     * @param nl           netlist to unroll
     * @param free_initial frame-0 DFFs unconstrained instead of reset
     * @param state_equalities net pairs forced equal at frame 0
     */
    Unroller(const Netlist &nl, bool free_initial,
             const std::vector<std::pair<NetId, NetId>> &state_equalities = {});

    /** Append one more frame; returns its index. */
    int add_frame();

    int num_frames() const { return static_cast<int>(frames_.size()); }

    sat::Solver &solver() { return solver_; }

    /** Variable of @p net at @p frame. */
    sat::Var var(int frame, NetId net) const
    {
        return frames_[frame].net_var[net];
    }

    /** Model value of @p net at @p frame (after a Sat result). */
    bool value(int frame, NetId net) const
    {
        return solver_.model_value(var(frame, net));
    }

  private:
    const Netlist &nl_;
    sat::Solver solver_;
    std::vector<FrameVars> frames_;
    bool free_initial_;
    std::vector<std::pair<NetId, NetId>> state_equalities_;
};

} // namespace vega::formal
