#include "formal/equiv.h"

#include "common/logging.h"
#include "formal/cover_batch.h"
#include "netlist/builder.h"

namespace vega::formal {

const char *
equiv_status_name(EquivStatus status)
{
    switch (status) {
      case EquivStatus::Equivalent: return "equivalent";
      case EquivStatus::Different:  return "different";
      case EquivStatus::Timeout:    return "timeout";
    }
    return "?";
}

std::vector<NetId>
splice_netlist(Netlist &dst, const Netlist &src,
               const std::vector<std::pair<NetId, NetId>> &input_binding,
               const std::string &suffix)
{
    std::vector<NetId> map(src.num_nets(), kInvalidId);
    for (const auto &[src_net, dst_net] : input_binding)
        map[src_net] = dst_net;

    // Fresh nets for everything not bound to an input.
    for (NetId n = 0; n < src.num_nets(); ++n) {
        if (map[n] != kInvalidId)
            continue;
        VEGA_CHECK(!src.net(n).is_primary_input,
                   "splice_netlist: unbound primary input ",
                   src.net(n).name);
        map[n] = dst.new_net(src.net(n).name + suffix);
    }

    for (CellId c = 0; c < src.num_cells(); ++c) {
        const Cell &cell = src.cell(c);
        std::vector<NetId> ins;
        for (int i = 0; i < cell.num_inputs(); ++i)
            ins.push_back(map[cell.in[i]]);
        if (cell.type == CellType::Dff) {
            dst.add_dff(cell.name + suffix, ins[0], map[cell.out],
                        cell.init, cell.clock_leaf);
        } else {
            dst.add_cell(cell.type, cell.name + suffix, ins,
                         map[cell.out]);
        }
    }
    return map;
}

EquivResult
check_equivalence(const Netlist &a, const Netlist &b,
                  const BmcOptions &opts)
{
    // Interface compatibility.
    VEGA_CHECK(a.input_bus_names() == b.input_bus_names(),
               "equiv: input interfaces differ");
    VEGA_CHECK(a.output_bus_names() == b.output_bus_names(),
               "equiv: output interfaces differ");

    Netlist miter("miter_" + a.name() + "_" + b.name());

    // Shared inputs.
    std::vector<std::pair<NetId, NetId>> bind_a, bind_b;
    for (const auto &bus : a.input_bus_names()) {
        const auto &na = a.bus(bus);
        const auto &nb = b.bus(bus);
        VEGA_CHECK(na.size() == nb.size(), "equiv: width of ", bus);
        auto shared = miter.add_input_bus(bus, na.size());
        for (size_t i = 0; i < na.size(); ++i) {
            bind_a.emplace_back(na[i], shared[i]);
            bind_b.emplace_back(nb[i], shared[i]);
        }
    }

    auto map_a = splice_netlist(miter, a, bind_a, "@a");
    auto map_b = splice_netlist(miter, b, bind_b, "@b");

    // XOR-compared outputs, published for counterexample display.
    Builder bld(miter, "miter");
    std::vector<NetId> diffs;
    for (const auto &bus : a.output_bus_names()) {
        const auto &na = a.bus(bus);
        const auto &nb = b.bus(bus);
        VEGA_CHECK(na.size() == nb.size(), "equiv: width of ", bus);
        std::vector<NetId> out_a, out_b;
        for (size_t i = 0; i < na.size(); ++i) {
            out_a.push_back(map_a[na[i]]);
            out_b.push_back(map_b[nb[i]]);
            diffs.push_back(bld.xor_(map_a[na[i]], map_b[nb[i]]));
        }
        miter.add_output_bus(bus + "@a", out_a);
        miter.add_output_bus(bus + "@b", out_b);
    }
    NetId diff = bld.or_n(diffs);
    miter.add_output_bus("miter_diff", {diff});
    miter.validate();

    BmcOptions bopts = opts;
    bopts.assumes.clear();
    bopts.state_equalities.clear();

    // A miter check is a one-target cover suite, so the Incremental
    // engine routes it through the batched machinery (same deepening
    // semantics, same witness re-derivation, shared code path with the
    // lift suites). Scratch stays on the per-query oracle.
    BmcResult bmc;
    if (bopts.engine == BmcEngine::Incremental) {
        CoverBatch batch(miter, bopts);
        CoverTargetSpec spec;
        spec.target = diff;
        int idx = batch.add_target(std::move(spec));
        batch.run();
        bmc = batch.result(idx);
    } else {
        bmc = check_cover(miter, diff, bopts);
    }

    EquivResult result;
    result.frames = bmc.frames;
    switch (bmc.status) {
      case BmcStatus::Covered:
        result.status = EquivStatus::Different;
        result.counterexample = std::move(bmc.trace);
        break;
      case BmcStatus::Unreachable:
        result.status = EquivStatus::Equivalent;
        result.proven_by_induction = bmc.proven_by_induction;
        break;
      case BmcStatus::Timeout:
        result.status = EquivStatus::Timeout;
        break;
    }
    return result;
}

} // namespace vega::formal
