#include "formal/unroller.h"

#include "common/logging.h"

namespace vega::formal {

using sat::Lit;
using sat::Var;

Unroller::Unroller(const Netlist &nl, bool free_initial,
                   const std::vector<std::pair<NetId, NetId>> &state_eqs)
    : nl_(nl), free_initial_(free_initial), state_equalities_(state_eqs)
{
}

int
Unroller::add_frame()
{
    FrameVars frame;
    frame.net_var.assign(nl_.num_nets(), -1);
    int f = static_cast<int>(frames_.size());

    // Primary inputs: fresh free variables every frame.
    for (NetId n : nl_.primary_inputs())
        frame.net_var[n] = solver_.new_var();

    // DFF outputs.
    for (CellId c : nl_.dffs()) {
        const Cell &cell = nl_.cell(c);
        if (f == 0) {
            Var v = solver_.new_var();
            frame.net_var[cell.out] = v;
            if (!free_initial_)
                solver_.add_clause(Lit(v, !cell.init));
        } else {
            // Alias: Q at frame f is D at frame f-1.
            frame.net_var[cell.out] = frames_[f - 1].net_var[cell.in[0]];
        }
    }

    encode_combinational(nl_, solver_, frame);

    if (f == 0 && free_initial_) {
        for (const auto &[a, b] : state_equalities_) {
            Lit la(frame.net_var[a], false), lb(frame.net_var[b], false);
            solver_.add_clause(~la, lb);
            solver_.add_clause(la, ~lb);
        }
    }

    frames_.push_back(std::move(frame));
    return f;
}

} // namespace vega::formal
