#include "formal/unroller.h"

#include "common/logging.h"
#include "obs/metrics.h"

namespace vega::formal {

using sat::Lit;
using sat::Var;

Unroller::Unroller(const Netlist &nl, bool free_initial,
                   const std::vector<std::pair<NetId, NetId>> &state_eqs)
    : nl_(nl), free_initial_(free_initial), state_equalities_(state_eqs)
{
}

void
Unroller::set_assumes(const std::vector<NetId> &assumes)
{
    VEGA_CHECK(frames_.empty(), "set_assumes after frames were added");
    assumes_ = assumes;
}

void
Unroller::set_cell_mask(std::vector<uint8_t> mask)
{
    VEGA_CHECK(mask.empty() ||
                   mask.size() == static_cast<size_t>(nl_.num_cells()),
               "cell mask size");
    cell_mask_ = std::move(mask);
}

int
Unroller::add_frame()
{
    static obs::Counter &frames_unrolled =
        obs::counter("bmc.frames_unrolled");
    frames_unrolled.inc();

    const std::vector<uint8_t> *mask =
        cell_mask_.empty() ? nullptr : &cell_mask_;

    FrameVars frame;
    frame.net_var.assign(nl_.num_nets(), -1);
    int f = static_cast<int>(frames_.size());

    // Primary inputs: fresh free variables every frame.
    for (NetId n : nl_.primary_inputs())
        frame.net_var[n] = solver_.new_var();

    // DFF outputs.
    for (CellId c : nl_.dffs()) {
        if (mask && !(*mask)[c])
            continue;
        const Cell &cell = nl_.cell(c);
        if (f == 0) {
            Var v = solver_.new_var();
            frame.net_var[cell.out] = v;
            if (!free_initial_)
                solver_.add_clause(Lit(v, !cell.init));
        } else {
            // Alias: Q at frame f is D at frame f-1.
            frame.net_var[cell.out] = frames_[f - 1].net_var[cell.in[0]];
            VEGA_CHECK(frame.net_var[cell.out] != -1,
                       "cell mask dropped the D cone of a masked-in DFF");
        }
    }

    encode_combinational(nl_, solver_, frame, mask);

    if (f == 0 && free_initial_) {
        for (const auto &[a, b] : state_equalities_) {
            VEGA_CHECK(frame.net_var[a] != -1 && frame.net_var[b] != -1,
                       "state-equality net outside the cell mask");
            Lit la(frame.net_var[a], false), lb(frame.net_var[b], false);
            solver_.add_clause(~la, lb);
            solver_.add_clause(la, ~lb);
        }
    }

    // Assume nets hold in every frame; a permanent part of the frame.
    for (NetId a : assumes_) {
        VEGA_CHECK(frame.net_var[a] != -1,
                   "assume net outside the cell mask");
        solver_.add_clause(Lit(frame.net_var[a], false));
    }

    frames_.push_back(std::move(frame));
    record_frame_origins(f);
    return f;
}

void
Unroller::record_frame_origins(int f)
{
    const int64_t num_nets = static_cast<int64_t>(nl_.num_nets());
    const auto &vars = frames_[f].net_var;
    if (static_cast<int>(var_canon_.size()) < solver_.num_vars())
        var_canon_.resize(solver_.num_vars(), -1);
    for (NetId n = 0; n < static_cast<NetId>(vars.size()); ++n) {
        Var v = vars[n];
        // First write wins: a DFF's Q at frame f aliases its D variable
        // of frame f-1, whose canonical name is the earlier (frame, net).
        if (v != -1 && var_canon_[v] == -1)
            var_canon_[v] = int64_t(f) * num_nets + n;
    }
}

sat::Lit
Unroller::cover_activation(int frame, NetId target)
{
    VEGA_CHECK(frame < num_frames(), "cover_activation beyond last frame");
    for (const CoverAct &ca : cover_acts_)
        if (ca.frame == frame && ca.target == target)
            return ca.act;
    VEGA_CHECK(var(frame, target) != -1,
               "cover target outside the cell mask");
    Lit act(solver_.new_var(), false);
    var_canon_.resize(solver_.num_vars(), -1);
    solver_.add_clause(~act, Lit(var(frame, target), false));
    cover_acts_.push_back({frame, target, act});
    return act;
}

sat::Lit
Unroller::clause_activation(const std::vector<std::pair<int, NetId>> &terms)
{
    VEGA_CHECK(!terms.empty(), "clause_activation with no terms");
    for (const ClauseAct &ca : clause_acts_)
        if (ca.terms == terms)
            return ca.act;
    Lit act(solver_.new_var(), false);
    var_canon_.resize(solver_.num_vars(), -1);
    std::vector<Lit> clause{~act};
    for (const auto &[f, n] : terms) {
        VEGA_CHECK(f < num_frames(), "clause_activation beyond last frame");
        VEGA_CHECK(var(f, n) != -1, "clause term outside the cell mask");
        clause.emplace_back(var(f, n), false);
    }
    solver_.add_clause(std::move(clause));
    clause_acts_.push_back({terms, act});
    return act;
}

sat::Lit
Unroller::equality_activation(
    const std::vector<std::pair<NetId, NetId>> &pairs)
{
    VEGA_CHECK(free_initial_ && num_frames() > 0,
               "equality_activation needs a free-initial frame 0");
    Lit g(solver_.new_var(), false);
    var_canon_.resize(solver_.num_vars(), -1);
    for (const auto &[a, b] : pairs) {
        VEGA_CHECK(var(0, a) != -1 && var(0, b) != -1,
                   "equality net outside the cell mask");
        Lit la(var(0, a), false), lb(var(0, b), false);
        solver_.add_clause(~g, ~la, lb);
        solver_.add_clause(~g, la, ~lb);
    }
    return g;
}

void
Unroller::enable_clause_sharing(int max_size, uint32_t max_lbd)
{
    solver_.set_export_limits(max_size, max_lbd);
}

std::vector<Unroller::SharedClause>
Unroller::take_shared_clauses()
{
    std::vector<SharedClause> out;
    for (const auto &clause : solver_.take_exported()) {
        SharedClause canon;
        canon.reserve(clause.size());
        bool ok = true;
        for (Lit l : clause) {
            Var v = l.var();
            int64_t id = static_cast<size_t>(v) < var_canon_.size()
                             ? var_canon_[v]
                             : -1;
            if (id < 0) {
                ok = false; // clause touches a private variable
                break;
            }
            canon.push_back(id * 2 + (l.sign() ? 1 : 0));
        }
        if (ok)
            out.push_back(std::move(canon));
    }
    return out;
}

size_t
Unroller::import_shared_clauses(const std::vector<SharedClause> &clauses)
{
    const int64_t num_nets = static_cast<int64_t>(nl_.num_nets());
    size_t imported = 0;
    std::vector<Lit> local;
    for (const SharedClause &canon : clauses) {
        local.clear();
        bool ok = true;
        for (int64_t cl : canon) {
            int64_t id = cl >> 1;
            int frame = static_cast<int>(id / num_nets);
            NetId net = static_cast<NetId>(id % num_nets);
            if (frame >= num_frames() ||
                frames_[frame].net_var[net] == -1) {
                ok = false; // frame/net not encoded here (yet)
                break;
            }
            local.emplace_back(frames_[frame].net_var[net],
                               (cl & 1) != 0);
        }
        if (!ok)
            continue;
        solver_.import_clause(local);
        ++imported;
    }
    return imported;
}

} // namespace vega::formal
