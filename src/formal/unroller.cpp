#include "formal/unroller.h"

#include "common/logging.h"
#include "obs/metrics.h"

namespace vega::formal {

using sat::Lit;
using sat::Var;

Unroller::Unroller(const Netlist &nl, bool free_initial,
                   const std::vector<std::pair<NetId, NetId>> &state_eqs)
    : nl_(nl), free_initial_(free_initial), state_equalities_(state_eqs)
{
}

void
Unroller::set_assumes(const std::vector<NetId> &assumes)
{
    VEGA_CHECK(frames_.empty(), "set_assumes after frames were added");
    assumes_ = assumes;
}

int
Unroller::add_frame()
{
    static obs::Counter &frames_unrolled =
        obs::counter("bmc.frames_unrolled");
    frames_unrolled.inc();

    FrameVars frame;
    frame.net_var.assign(nl_.num_nets(), -1);
    int f = static_cast<int>(frames_.size());

    // Primary inputs: fresh free variables every frame.
    for (NetId n : nl_.primary_inputs())
        frame.net_var[n] = solver_.new_var();

    // DFF outputs.
    for (CellId c : nl_.dffs()) {
        const Cell &cell = nl_.cell(c);
        if (f == 0) {
            Var v = solver_.new_var();
            frame.net_var[cell.out] = v;
            if (!free_initial_)
                solver_.add_clause(Lit(v, !cell.init));
        } else {
            // Alias: Q at frame f is D at frame f-1.
            frame.net_var[cell.out] = frames_[f - 1].net_var[cell.in[0]];
        }
    }

    encode_combinational(nl_, solver_, frame);

    if (f == 0 && free_initial_) {
        for (const auto &[a, b] : state_equalities_) {
            Lit la(frame.net_var[a], false), lb(frame.net_var[b], false);
            solver_.add_clause(~la, lb);
            solver_.add_clause(la, ~lb);
        }
    }

    // Assume nets hold in every frame; a permanent part of the frame.
    for (NetId a : assumes_)
        solver_.add_clause(Lit(frame.net_var[a], false));

    frames_.push_back(std::move(frame));
    return f;
}

sat::Lit
Unroller::cover_activation(int frame, NetId target)
{
    VEGA_CHECK(frame < num_frames(), "cover_activation beyond last frame");
    for (const CoverAct &ca : cover_acts_)
        if (ca.frame == frame && ca.target == target)
            return ca.act;
    Lit act(solver_.new_var(), false);
    solver_.add_clause(~act, Lit(var(frame, target), false));
    cover_acts_.push_back({frame, target, act});
    return act;
}

} // namespace vega::formal
