/**
 * @file
 * Helpers shared by the per-query BMC engines (bmc.cpp) and the
 * suite-level batched engine (cover_batch.cpp). Internal to
 * src/formal — not part of the library interface.
 */
#pragma once

#include <chrono>

#include "formal/bmc.h"
#include "formal/unroller.h"

namespace vega::formal::detail {

/** Record all port buses of @p nl for frames [0, frames) into a Waveform. */
Waveform extract_trace(const Netlist &nl, const Unroller &unroll,
                       int frames);

/**
 * One loop-wide wall-clock deadline, shared by every SAT query of a
 * check_cover call or CoverBatch run: each query is handed only the
 * time remaining, so the whole loop — not each query — honours
 * wall_budget_seconds.
 */
class LoopDeadline
{
  public:
    explicit LoopDeadline(double seconds) : armed_(seconds >= 0.0)
    {
        if (armed_)
            end_ = Clock::now() +
                   std::chrono::duration_cast<Clock::duration>(
                       std::chrono::duration<double>(seconds));
    }

    /** Seconds left for the next query; -1 when no deadline is armed. */
    double remaining() const
    {
        if (!armed_)
            return -1.0;
        double left = std::chrono::duration<double>(end_ - Clock::now())
                          .count();
        return left > 0.0 ? left : 0.0;
    }

  private:
    using Clock = std::chrono::steady_clock;
    bool armed_;
    Clock::time_point end_;
};

/** Count one query outcome into the bmc.covered/unreachable/timeout
 *  counters at whatever point an engine settles on it. */
void count_outcome(BmcStatus status);

/**
 * Fresh-instance bound-@p k cover query from reset. This is the scratch
 * engine's inner step and every other engine's witness derivation after
 * a Sat answer: satisfiability at a fixed bound is engine-independent,
 * so routing all engines' traces through this one function makes their
 * extracted waveforms identical by construction.
 */
sat::Solver::Result
solve_reset_bound(const Netlist &nl, NetId target, const BmcOptions &opts,
                  int k, int64_t conflict_budget, double wall_remaining,
                  uint64_t &conflicts, Waveform *trace_out);

/** Seconds elapsed since @p t0, for per-target wall attribution. */
double seconds_since(std::chrono::steady_clock::time_point t0);

} // namespace vega::formal::detail
