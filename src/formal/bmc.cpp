#include "formal/bmc.h"

#include "common/logging.h"
#include "formal/unroller.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vega::formal {

using sat::Lit;

const char *
bmc_status_name(BmcStatus status)
{
    switch (status) {
      case BmcStatus::Covered:     return "covered";
      case BmcStatus::Unreachable: return "unreachable";
      case BmcStatus::Timeout:     return "timeout";
    }
    return "?";
}

namespace {

/** Record all port buses of @p nl for frames [0, frames) into a Waveform. */
Waveform
extract_trace(const Netlist &nl, const Unroller &unroll, int frames)
{
    Waveform w;
    for (int f = 0; f < frames; ++f) {
        for (const auto &bus : nl.input_bus_names()) {
            const auto &nets = nl.bus(bus);
            BitVec v(nets.size());
            for (size_t i = 0; i < nets.size(); ++i)
                v.set(i, unroll.value(f, nets[i]));
            w.record(bus, v);
        }
        for (const auto &bus : nl.output_bus_names()) {
            const auto &nets = nl.bus(bus);
            BitVec v(nets.size());
            for (size_t i = 0; i < nets.size(); ++i)
                v.set(i, unroll.value(f, nets[i]));
            w.record(bus, v);
        }
    }
    return w;
}

sat::SolveLimits
query_limits(const BmcOptions &opts)
{
    sat::SolveLimits limits;
    limits.conflict_budget = opts.conflict_budget;
    limits.wall_seconds = opts.wall_budget_seconds;
    return limits;
}

} // namespace

namespace {

/** Count one query outcome into the bmc.covered/unreachable/timeout
 *  counters at whatever point check_cover settles on it. */
void
count_outcome(BmcStatus status)
{
    static obs::Counter &covered = obs::counter("bmc.covered");
    static obs::Counter &unreachable = obs::counter("bmc.unreachable");
    static obs::Counter &timeouts = obs::counter("bmc.timeouts");
    switch (status) {
      case BmcStatus::Covered:     covered.inc(); break;
      case BmcStatus::Unreachable: unreachable.inc(); break;
      case BmcStatus::Timeout:     timeouts.inc(); break;
    }
}

} // namespace

BmcResult
check_cover(const Netlist &nl, NetId target, const BmcOptions &opts)
{
    VEGA_SPAN("bmc.check_cover");
    static obs::Counter &frames_unrolled =
        obs::counter("bmc.frames_unrolled");

    BmcResult result;
    result.conflicts = 0;

    // Phase 1: bounded search from reset, shortest trace first.
    for (int k = 1; k <= opts.max_frames; ++k) {
        VEGA_SPAN("bmc.frame");
        frames_unrolled.add(uint64_t(k));
        Unroller unroll(nl, /*free_initial=*/false);
        for (int f = 0; f < k; ++f)
            unroll.add_frame();
        auto &solver = unroll.solver();
        for (int f = 0; f < k; ++f)
            for (NetId a : opts.assumes)
                solver.add_clause(Lit(unroll.var(f, a), false));
        solver.add_clause(Lit(unroll.var(k - 1, target), false));

        auto res = solver.solve(query_limits(opts));
        result.conflicts += solver.num_conflicts();
        if (res == sat::Solver::Result::Sat) {
            result.status = BmcStatus::Covered;
            result.frames = k;
            result.trace = extract_trace(nl, unroll, k);
            count_outcome(result.status);
            return result;
        }
        if (res == sat::Solver::Result::Unknown) {
            result.status = BmcStatus::Timeout;
            result.frames = k;
            count_outcome(result.status);
            return result;
        }
    }

    // Phase 2: unreachability. From an arbitrary state whose shadow
    // registers agree with their originals, can one more cycle raise the
    // target? UNSAT generalizes over every reachable state (the shadow
    // invariant holds on all of them), proving the cover unreachable.
    {
        VEGA_SPAN("bmc.unreachability");
        frames_unrolled.add(2);
        Unroller unroll(nl, /*free_initial=*/true, opts.state_equalities);
        unroll.add_frame();
        unroll.add_frame();
        auto &solver = unroll.solver();
        for (int f = 0; f < 2; ++f)
            for (NetId a : opts.assumes)
                solver.add_clause(Lit(unroll.var(f, a), false));
        solver.add_clause(Lit(unroll.var(0, target), false),
                          Lit(unroll.var(1, target), false));

        auto res = solver.solve(query_limits(opts));
        result.conflicts += solver.num_conflicts();
        if (res == sat::Solver::Result::Unsat) {
            result.status = BmcStatus::Unreachable;
            result.proven_by_induction = true;
            count_outcome(result.status);
            return result;
        }
        if (res == sat::Solver::Result::Unknown) {
            result.status = BmcStatus::Timeout;
            count_outcome(result.status);
            return result;
        }
    }

    // Free-state check is satisfiable but bounded search from reset found
    // nothing: for these feed-forward pipelines (state fully refreshed
    // every `latency` cycles) the bound is exhaustive, so report
    // unreachable, flagged as a bounded proof.
    result.status = BmcStatus::Unreachable;
    result.proven_by_induction = false;
    result.frames = opts.max_frames;
    count_outcome(result.status);
    return result;
}

EscalatedBmcResult
check_cover_escalating(const Netlist &nl, NetId target,
                       const BmcOptions &opts,
                       const EscalationPolicy &policy)
{
    static obs::Counter &escalations = obs::counter("bmc.escalations");
    EscalatedBmcResult out;
    BmcOptions attempt_opts = opts;
    int max_attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
    for (int attempt = 1;; ++attempt) {
        if (attempt > 1)
            escalations.inc();
        out.result = check_cover(nl, target, attempt_opts);
        out.attempts = attempt;
        out.total_conflicts += out.result.conflicts;
        if (out.result.status != BmcStatus::Timeout ||
            attempt >= max_attempts)
            return out;
        // Escalate: grow both budgets geometrically for the retry.
        attempt_opts.conflict_budget = int64_t(
            double(attempt_opts.conflict_budget) * policy.budget_growth);
        if (attempt_opts.wall_budget_seconds >= 0.0)
            attempt_opts.wall_budget_seconds *= policy.budget_growth;
    }
}

} // namespace vega::formal
