#include "formal/bmc.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "formal/bmc_internal.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vega::formal {

using sat::Lit;

const char *
bmc_status_name(BmcStatus status)
{
    switch (status) {
      case BmcStatus::Covered:     return "covered";
      case BmcStatus::Unreachable: return "unreachable";
      case BmcStatus::Timeout:     return "timeout";
    }
    return "?";
}

namespace detail {

/** Record all port buses of @p nl for frames [0, frames) into a Waveform. */
Waveform
extract_trace(const Netlist &nl, const Unroller &unroll, int frames)
{
    Waveform w;
    for (int f = 0; f < frames; ++f) {
        for (const auto &bus : nl.input_bus_names()) {
            const auto &nets = nl.bus(bus);
            BitVec v(nets.size());
            for (size_t i = 0; i < nets.size(); ++i)
                v.set(i, unroll.value(f, nets[i]));
            w.record(bus, v);
        }
        for (const auto &bus : nl.output_bus_names()) {
            const auto &nets = nl.bus(bus);
            BitVec v(nets.size());
            for (size_t i = 0; i < nets.size(); ++i)
                v.set(i, unroll.value(f, nets[i]));
            w.record(bus, v);
        }
    }
    return w;
}

/** Count one query outcome into the bmc.covered/unreachable/timeout
 *  counters at whatever point check_cover settles on it. */
void
count_outcome(BmcStatus status)
{
    static obs::Counter &covered = obs::counter("bmc.covered");
    static obs::Counter &unreachable = obs::counter("bmc.unreachable");
    static obs::Counter &timeouts = obs::counter("bmc.timeouts");
    switch (status) {
      case BmcStatus::Covered:     covered.inc(); break;
      case BmcStatus::Unreachable: unreachable.inc(); break;
      case BmcStatus::Timeout:     timeouts.inc(); break;
    }
}

/**
 * Fresh-instance bound-@p k cover query from reset. This is both the
 * scratch engine's inner step and the incremental engine's witness
 * derivation after a Sat answer: satisfiability at a fixed bound is
 * engine-independent, so routing both engines' traces through this one
 * function makes their extracted waveforms identical by construction.
 */
sat::Solver::Result
solve_reset_bound(const Netlist &nl, NetId target, const BmcOptions &opts,
                  int k, int64_t conflict_budget, double wall_remaining,
                  uint64_t &conflicts, Waveform *trace_out)
{
    Unroller unroll(nl, /*free_initial=*/false);
    unroll.set_assumes(opts.assumes);
    unroll.ensure_frames(k);
    auto &solver = unroll.solver();
    solver.add_clause(Lit(unroll.var(k - 1, target), false));

    sat::SolveLimits limits;
    limits.conflict_budget = conflict_budget;
    limits.wall_seconds = wall_remaining;
    auto res = solver.solve(limits);
    conflicts += solver.num_conflicts();
    if (res == sat::Solver::Result::Sat && trace_out)
        *trace_out = extract_trace(nl, unroll, k);
    return res;
}

double
seconds_since(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace detail

using namespace detail;

namespace {

/**
 * Scratch deepening loop: a fresh Unroller + solver per bound. The
 * historical engine, kept as the semantic reference for the regression
 * tests and the baseline for bench/bmc_throughput.
 */
BmcResult
check_cover_scratch(const Netlist &nl, NetId target, const BmcOptions &opts)
{
    VEGA_SPAN("bmc.check_cover");
    const auto wall0 = std::chrono::steady_clock::now();
    LoopDeadline deadline(opts.wall_budget_seconds);
    BmcResult result;
    result.conflicts = 0;

    // Phase 1: bounded search from reset, shortest trace first.
    {
        VEGA_SPAN("bmc.deepen");
        for (int k = 1; k <= opts.max_frames; ++k) {
            VEGA_SPAN("bmc.frame");
            auto res = solve_reset_bound(nl, target, opts, k,
                                         opts.conflict_budget,
                                         deadline.remaining(),
                                         result.conflicts, &result.trace);
            if (res == sat::Solver::Result::Sat) {
                result.status = BmcStatus::Covered;
                result.frames = k;
                result.wall_seconds = seconds_since(wall0);
                count_outcome(result.status);
                return result;
            }
            if (res == sat::Solver::Result::Unknown) {
                result.status = BmcStatus::Timeout;
                result.frames = k;
                result.wall_seconds = seconds_since(wall0);
                count_outcome(result.status);
                return result;
            }
        }
    }

    // Phase 2: unreachability. From an arbitrary state whose shadow
    // registers agree with their originals, can one more cycle raise the
    // target? UNSAT generalizes over every reachable state (the shadow
    // invariant holds on all of them), proving the cover unreachable.
    {
        VEGA_SPAN("bmc.unreachability");
        Unroller unroll(nl, /*free_initial=*/true, opts.state_equalities);
        unroll.set_assumes(opts.assumes);
        unroll.ensure_frames(2);
        auto &solver = unroll.solver();
        solver.add_clause(Lit(unroll.var(0, target), false),
                          Lit(unroll.var(1, target), false));

        sat::SolveLimits limits;
        limits.conflict_budget = opts.conflict_budget;
        limits.wall_seconds = deadline.remaining();
        auto res = solver.solve(limits);
        result.conflicts += solver.num_conflicts();
        if (res == sat::Solver::Result::Unsat) {
            result.status = BmcStatus::Unreachable;
            result.proven_by_induction = true;
            result.wall_seconds = seconds_since(wall0);
            count_outcome(result.status);
            return result;
        }
        if (res == sat::Solver::Result::Unknown) {
            result.status = BmcStatus::Timeout;
            result.wall_seconds = seconds_since(wall0);
            count_outcome(result.status);
            return result;
        }
    }

    // Phase 3: the k-induction post-pass, when enabled — deeper step
    // queries can close proofs the 1-step check cannot.
    if (int depth = kinduction_prove(nl, target, opts,
                                     opts.conflict_budget,
                                     deadline.remaining(),
                                     result.conflicts)) {
        result.status = BmcStatus::Unreachable;
        result.proven_by_induction = true;
        result.kinduction_depth = depth;
        result.wall_seconds = seconds_since(wall0);
        count_outcome(result.status);
        return result;
    }

    // Free-state check is satisfiable but bounded search from reset found
    // nothing: for these feed-forward pipelines (state fully refreshed
    // every `latency` cycles) the bound is exhaustive, so report
    // unreachable, flagged as a bounded proof.
    result.status = BmcStatus::Unreachable;
    result.proven_by_induction = false;
    result.frames = opts.max_frames;
    result.wall_seconds = seconds_since(wall0);
    count_outcome(result.status);
    return result;
}

} // namespace

int
kinduction_prove(const Netlist &nl, NetId target, const BmcOptions &opts,
                 int64_t conflict_budget, double wall_remaining,
                 uint64_t &conflicts)
{
    int max_depth = std::min(opts.kinduction_frames, opts.max_frames);
    if (max_depth < 2)
        return 0;
    VEGA_SPAN("bmc.kinduction");
    static obs::Counter &proofs = obs::counter("bmc.kinduction_proofs");
    LoopDeadline deadline(wall_remaining);

    // Depth-k step query: from a free, shadow-consistent state, the
    // target stays low for frames 0..k-1 — can it rise at frame k?
    // UNSAT closes the induction: a first rise at time T >= max_frames
    // >= k would need this very window to be satisfiable, and phase 1
    // already refuted every rise before max_frames (the base case).
    // Depth 1 is skipped: the phase-2 free-state check subsumes it
    // (its clause target@0 ∨ target@1 is the k=1 window plus the
    // state itself).
    for (int k = 2; k <= max_depth; ++k) {
        Unroller unroll(nl, /*free_initial=*/true, opts.state_equalities);
        unroll.set_assumes(opts.assumes);
        unroll.ensure_frames(k + 1);
        auto &solver = unroll.solver();
        for (int j = 0; j < k; ++j)
            solver.add_clause(Lit(unroll.var(j, target), true));
        solver.add_clause(Lit(unroll.var(k, target), false));

        sat::SolveLimits limits;
        limits.conflict_budget = conflict_budget;
        limits.wall_seconds = deadline.remaining();
        auto res = solver.solve(limits);
        conflicts += solver.num_conflicts();
        if (res == sat::Solver::Result::Unsat) {
            proofs.inc();
            return k;
        }
        if (res == sat::Solver::Result::Unknown)
            return 0; // starve out: fall back to the bounded verdict
    }
    return 0;
}

CoverSession::CoverSession(const Netlist &nl, NetId target,
                           const BmcOptions &opts)
    : nl_(nl), target_(target), opts_(opts),
      reset_unroller_(nl, /*free_initial=*/false)
{
    reset_unroller_.set_assumes(opts_.assumes);
}

BmcResult
CoverSession::run()
{
    return run(opts_.conflict_budget, opts_.wall_budget_seconds);
}

BmcResult
CoverSession::run(int64_t conflict_budget, double wall_budget_seconds)
{
    if (settled_)
        return settled_result_;

    VEGA_SPAN("bmc.check_cover");
    static obs::Counter &frames_reused = obs::counter("bmc.frames_reused");
    static obs::Counter &incremental_solves =
        obs::counter("bmc.incremental_solves");

    const auto wall0 = std::chrono::steady_clock::now();
    LoopDeadline deadline(wall_budget_seconds);
    BmcResult result;
    result.conflicts = 0;
    auto settle = [&](const BmcResult &r) {
        settled_ = true;
        settled_result_ = r;
        // A replayed settled result charges no further conflicts/time.
        settled_result_.conflicts = 0;
        settled_result_.wall_seconds = 0.0;
    };

    // Phase 1: deepen on the persistent instance, shortest trace first.
    // Bound k is the assumption query solve({act_k}); Unsat retires the
    // bound and appends one more frame, Unknown leaves everything in
    // place for the next (escalated) run.
    {
        VEGA_SPAN("bmc.deepen");
        while (!phase1_done_) {
            int k = next_bound_;
            if (k > opts_.max_frames) {
                phase1_done_ = true;
                break;
            }
            VEGA_SPAN("bmc.frame");
            frames_reused.add(static_cast<uint64_t>(
                std::min(reset_unroller_.num_frames(), k)));
            reset_unroller_.ensure_frames(k);
            Lit act = reset_unroller_.cover_activation(k - 1, target_);

            sat::SolveLimits limits;
            limits.conflict_budget = conflict_budget;
            limits.wall_seconds = deadline.remaining();
            incremental_solves.inc();
            auto &solver = reset_unroller_.solver();
            uint64_t before = solver.num_conflicts();
            auto res = solver.solve({act}, limits);
            result.conflicts += solver.num_conflicts() - before;

            if (res == sat::Solver::Result::Sat) {
                // Canonicalize the witness through the scratch engine's
                // bound-k query so both engines extract byte-identical
                // waveforms (bound-k satisfiability is engine-
                // independent; only the particular model is not).
                auto wres = solve_reset_bound(
                    nl_, target_, opts_, k, conflict_budget,
                    deadline.remaining(), result.conflicts, &result.trace);
                if (wres == sat::Solver::Result::Unknown) {
                    result.status = BmcStatus::Timeout;
                    result.frames = k;
                    result.wall_seconds = seconds_since(wall0);
                    count_outcome(result.status);
                    return result; // resumable: retry bound k
                }
                VEGA_CHECK(wres == sat::Solver::Result::Sat,
                           "bmc: canonical witness vanished at bound ", k);
                result.status = BmcStatus::Covered;
                result.frames = k;
                result.wall_seconds = seconds_since(wall0);
                count_outcome(result.status);
                settle(result);
                return result;
            }
            if (res == sat::Solver::Result::Unknown) {
                result.status = BmcStatus::Timeout;
                result.frames = k;
                result.wall_seconds = seconds_since(wall0);
                count_outcome(result.status);
                return result; // resumable: retry bound k
            }
            // Unsat at bound k: retire the bound's activation literal
            // and deepen. Clauses learned here keep pruning bound k+1.
            reset_unroller_.retire(act);
            next_bound_ = k + 1;
        }
    }

    // Phase 2: free-state unreachability (see check_cover_scratch). The
    // instance persists across runs so an escalated retry re-solves it
    // with learned clauses intact.
    {
        VEGA_SPAN("bmc.unreachability");
        if (!free_unroller_) {
            free_unroller_ = std::make_unique<Unroller>(
                nl_, /*free_initial=*/true, opts_.state_equalities);
            free_unroller_->set_assumes(opts_.assumes);
            free_unroller_->ensure_frames(2);
            free_unroller_->solver().add_clause(
                Lit(free_unroller_->var(0, target_), false),
                Lit(free_unroller_->var(1, target_), false));
        }
        sat::SolveLimits limits;
        limits.conflict_budget = conflict_budget;
        limits.wall_seconds = deadline.remaining();
        auto &solver = free_unroller_->solver();
        uint64_t before = solver.num_conflicts();
        auto res = solver.solve(limits);
        result.conflicts += solver.num_conflicts() - before;
        if (res == sat::Solver::Result::Unsat) {
            result.status = BmcStatus::Unreachable;
            result.proven_by_induction = true;
            result.wall_seconds = seconds_since(wall0);
            count_outcome(result.status);
            settle(result);
            return result;
        }
        if (res == sat::Solver::Result::Unknown) {
            result.status = BmcStatus::Timeout;
            result.wall_seconds = seconds_since(wall0);
            count_outcome(result.status);
            return result; // resumable: re-solve phase 2
        }
    }

    // Phase 3: the k-induction post-pass (identical to the scratch
    // engine's, so the per-query oracle agrees at any option set).
    if (int depth = kinduction_prove(nl_, target_, opts_, conflict_budget,
                                     deadline.remaining(),
                                     result.conflicts)) {
        result.status = BmcStatus::Unreachable;
        result.proven_by_induction = true;
        result.kinduction_depth = depth;
        result.wall_seconds = seconds_since(wall0);
        count_outcome(result.status);
        settle(result);
        return result;
    }

    result.status = BmcStatus::Unreachable;
    result.proven_by_induction = false;
    result.frames = opts_.max_frames;
    result.wall_seconds = seconds_since(wall0);
    count_outcome(result.status);
    settle(result);
    return result;
}

BmcResult
check_cover(const Netlist &nl, NetId target, const BmcOptions &opts)
{
    if (opts.engine == BmcEngine::Scratch)
        return check_cover_scratch(nl, target, opts);
    CoverSession session(nl, target, opts);
    return session.run();
}

EscalatedBmcResult
check_cover_escalating(const Netlist &nl, NetId target,
                       const BmcOptions &opts,
                       const EscalationPolicy &policy)
{
    static obs::Counter &escalations = obs::counter("bmc.escalations");
    EscalatedBmcResult out;
    int max_attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;

    if (opts.engine == BmcEngine::Scratch) {
        BmcOptions attempt_opts = opts;
        for (int attempt = 1;; ++attempt) {
            if (attempt > 1)
                escalations.inc();
            out.result = check_cover(nl, target, attempt_opts);
            out.attempts = attempt;
            out.total_conflicts += out.result.conflicts;
            if (out.result.status != BmcStatus::Timeout ||
                attempt >= max_attempts)
                return out;
            // Escalate: grow both budgets geometrically for the retry.
            attempt_opts.conflict_budget = int64_t(
                double(attempt_opts.conflict_budget) * policy.budget_growth);
            if (attempt_opts.wall_budget_seconds >= 0.0)
                attempt_opts.wall_budget_seconds *= policy.budget_growth;
        }
    }

    // Incremental: every rung of the ladder resumes the same session —
    // frames and learned clauses survive the escalation, so attempt n+1
    // continues the timed-out bound instead of re-unrolling 1..k.
    CoverSession session(nl, target, opts);
    int64_t budget = opts.conflict_budget;
    double wall = opts.wall_budget_seconds;
    for (int attempt = 1;; ++attempt) {
        if (attempt > 1)
            escalations.inc();
        out.result = session.run(budget, wall);
        out.attempts = attempt;
        out.total_conflicts += out.result.conflicts;
        if (out.result.status != BmcStatus::Timeout ||
            attempt >= max_attempts)
            return out;
        budget = int64_t(double(budget) * policy.budget_growth);
        if (wall >= 0.0)
            wall *= policy.budget_growth;
    }
}

} // namespace vega::formal
