/**
 * @file
 * Bounded model checking of cover properties (§3.3.3).
 *
 * Given an instrumented netlist with a 1-bit mismatch target (the cover
 * property `orig != shadow`), find the shortest input trace from reset
 * that raises the target — the paper's JasperGold step. Also provides the
 * unreachability ("UR") and timeout ("FF") outcomes of Table 4:
 *
 *  - Covered:     a trace exists; returned as a Waveform.
 *  - Unreachable: proven impossible — either by a 1-step check from an
 *                 unconstrained (shadow-consistent) state, which
 *                 generalizes every reachable state, or by exhausting the
 *                 bound on these feed-forward pipeline modules.
 *  - Timeout:     the SAT solver exceeded its conflict budget.
 */
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "netlist/netlist.h"
#include "sim/waveform.h"

namespace vega::formal {

struct BmcOptions
{
    /** Max frames to unroll; should exceed the module pipeline depth. */
    int max_frames = 6;
    /** SAT conflict budget per query; exceeded => Timeout ("FF"). */
    int64_t conflict_budget = 3000000;
    /**
     * Wall-clock budget per SAT query in seconds; exceeded => Timeout.
     * Negative disables the deadline (the default): the conflict budget
     * alone bounds the query.
     */
    double wall_budget_seconds = -1.0;
    /**
     * Nets that must be 1 in every frame — the paper's `assume property`
     * input restrictions (e.g. "op is a valid operation").
     */
    std::vector<NetId> assumes;
    /**
     * Register pairs (original, shadow) tied equal in the free-state
     * unreachability check.
     */
    std::vector<std::pair<NetId, NetId>> state_equalities;
};

enum class BmcStatus { Covered, Unreachable, Timeout };

const char *bmc_status_name(BmcStatus status);

struct BmcResult
{
    BmcStatus status = BmcStatus::Timeout;
    /** Frames in the trace (cover fires in the last one). */
    int frames = 0;
    /** Input and output bus values per cycle (Covered only). */
    Waveform trace;
    uint64_t conflicts = 0;
    /** Unreachable only: proven by the induction-style free-state check. */
    bool proven_by_induction = false;
};

/**
 * Check the cover property "target == 1 eventually" on @p nl.
 *
 * The trace records every input bus and every output bus of @p nl per
 * cycle, so it can be replayed on a Simulator or lowered to instructions.
 */
BmcResult check_cover(const Netlist &nl, NetId target,
                      const BmcOptions &opts);

/**
 * Retry policy for check_cover_escalating: on Timeout, re-run with the
 * conflict (and wall) budget grown geometrically, up to @p max_attempts
 * total attempts.
 */
struct EscalationPolicy
{
    /** Total attempts, including the first (>= 1). */
    int max_attempts = 1;
    /** Budget multiplier applied between attempts (> 1 to escalate). */
    double budget_growth = 4.0;
};

struct EscalatedBmcResult
{
    BmcResult result;
    /** Attempts actually spent (1 = first try sufficed). */
    int attempts = 1;
    /** Conflicts summed over every attempt. */
    uint64_t total_conflicts = 0;
};

/**
 * check_cover wrapped in retry-with-escalation: each Timeout retries
 * with budgets scaled by policy.budget_growth, up to
 * policy.max_attempts attempts. A result that is still Timeout after
 * the final attempt is the caller's signal to degrade (fuzz fallback)
 * or record a structured Exhausted outcome.
 */
EscalatedBmcResult check_cover_escalating(const Netlist &nl, NetId target,
                                          const BmcOptions &opts,
                                          const EscalationPolicy &policy);

} // namespace vega::formal
