/**
 * @file
 * Bounded model checking of cover properties (§3.3.3).
 *
 * Given an instrumented netlist with a 1-bit mismatch target (the cover
 * property `orig != shadow`), find the shortest input trace from reset
 * that raises the target — the paper's JasperGold step. Also provides the
 * unreachability ("UR") and timeout ("FF") outcomes of Table 4:
 *
 *  - Covered:     a trace exists; returned as a Waveform.
 *  - Unreachable: proven impossible — either by a 1-step check from an
 *                 unconstrained (shadow-consistent) state, which
 *                 generalizes every reachable state, or by exhausting the
 *                 bound on these feed-forward pipeline modules.
 *  - Timeout:     the SAT solver exceeded its conflict budget.
 *
 * Two engines implement the *per-query* deepening loop (selected by
 * BmcOptions::engine):
 *
 *  - Incremental (default): one long-lived Unroller whose persistent
 *    solver accumulates frames and learned clauses; bound k is the
 *    assumption query solve({act_k}) on a per-bound activation literal.
 *    Total frame encodings are O(K), and conflicts learned at bound k
 *    prune bound k+1. Mirrors how the paper's industrial model checker
 *    amortizes deepening. On a Sat answer the witness is re-derived
 *    through the same fresh-instance query the scratch engine runs, so
 *    both engines return byte-identical waveforms.
 *  - Scratch: a fresh Unroller + solver per bound (the historical
 *    engine, kept as the semantic reference and benchmark baseline).
 *
 * check_cover() and CoverSession answer ONE cover target per deepening
 * loop; they are the semantics oracle. Whole suites of targets on the
 * same module (every fault config of a lifted pair-batch) go through
 * formal::CoverBatch (cover_batch.h), which runs one deepening loop
 * per (module × fault-config) group, resolves every still-open target
 * at each bound, and returns per-target BmcResults byte-identical to
 * looping check_cover — at a fraction of the encoding and solving work.
 *
 * With BmcOptions::kinduction_frames > 0, a k-induction post-pass
 * upgrades bound-exhaustion verdicts to real Unreachable proofs: after
 * phase 1 refutes every bound <= max_frames and the 1-step free-state
 * check is inconclusive, depth k is proved by the step query "from a
 * shadow-consistent free state, target low for k frames, can it rise
 * at frame k?" — UNSAT at any k <= max_frames closes the induction
 * (phase 1 is the base case). All engines run the identical pass.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "formal/unroller.h"
#include "netlist/netlist.h"
#include "sim/waveform.h"

namespace vega::formal {

/** Deepening-loop implementation selector; see the file comment. */
enum class BmcEngine { Incremental, Scratch };

struct BmcOptions
{
    /** Max frames to unroll; should exceed the module pipeline depth. */
    int max_frames = 6;
    /** SAT conflict budget per query; exceeded => Timeout ("FF"). */
    int64_t conflict_budget = 3000000;
    /**
     * Wall-clock budget in seconds for the *whole* check_cover call;
     * exceeded => Timeout. One loop-wide deadline is armed at entry and
     * every SAT query receives only the remaining time, so the call
     * cannot take max_frames × the configured budget. Negative disables
     * the deadline (the default): the conflict budget alone bounds each
     * query.
     */
    double wall_budget_seconds = -1.0;
    /**
     * Nets that must be 1 in every frame — the paper's `assume property`
     * input restrictions (e.g. "op is a valid operation").
     */
    std::vector<NetId> assumes;
    /**
     * Register pairs (original, shadow) tied equal in the free-state
     * unreachability check.
     */
    std::vector<std::pair<NetId, NetId>> state_equalities;
    /** Deepening-loop engine. */
    BmcEngine engine = BmcEngine::Incremental;
    /**
     * Max depth of the k-induction post-pass (0 disables it, the
     * default). Depths 2..min(kinduction_frames, max_frames) are tried
     * in order once bounded search and the 1-step free-state check are
     * both inconclusive; the first UNSAT step query turns the bounded
     * "Unreachable" into a proof (BmcResult::kinduction_depth).
     */
    int kinduction_frames = 0;
    /**
     * CoverBatch only: worker threads of the portfolio. Targets are
     * partitioned round-robin across workers, which share learned
     * clauses after every bound; per-target verdicts are deterministic
     * regardless of this value (it only moves wall time).
     */
    int portfolio_threads = 1;
};

enum class BmcStatus { Covered, Unreachable, Timeout };

const char *bmc_status_name(BmcStatus status);

struct BmcResult
{
    BmcStatus status = BmcStatus::Timeout;
    /** Frames in the trace (cover fires in the last one). */
    int frames = 0;
    /** Input and output bus values per cycle (Covered only). */
    Waveform trace;
    /** Conflicts spent by this call (this run, for a resumed session). */
    uint64_t conflicts = 0;
    /** Unreachable only: proven by the induction-style free-state check
     *  (or by the deeper k-induction post-pass; see kinduction_depth). */
    bool proven_by_induction = false;
    /**
     * Depth at which the k-induction post-pass closed the proof; 0 when
     * the pass was disabled, inconclusive, or not needed (the 1-step
     * free-state check already proved unreachability).
     */
    int kinduction_depth = 0;
    /**
     * Wall-clock seconds of SAT solving attributed to this target by
     * this call. Under CoverBatch the loop-wide wall budget is shared
     * by all targets and this field carries each target's slice, so
     * summing it over a batch never double-counts the budget the way
     * per-call accounting did when callers looped check_cover.
     */
    double wall_seconds = 0.0;
};

/**
 * Check the cover property "target == 1 eventually" on @p nl.
 *
 * The trace records every input bus and every output bus of @p nl per
 * cycle, so it can be replayed on a Simulator or lowered to instructions.
 */
BmcResult check_cover(const Netlist &nl, NetId target,
                      const BmcOptions &opts);

/**
 * The k-induction step queries, standalone: prove `target` can never
 * rise, given that phase-1 bounded search already refuted every bound
 * <= opts.max_frames (the base case). Tries depths 2..min(
 * opts.kinduction_frames, opts.max_frames); returns the first depth
 * whose step query is UNSAT, or 0 when none is (or a budget ran out).
 * Shared by both per-query engines and cross-checked against
 * exhaustive unrolling in the tests; CoverBatch runs the same queries
 * on its shared free-state instance.
 */
int kinduction_prove(const Netlist &nl, NetId target,
                     const BmcOptions &opts, int64_t conflict_budget,
                     double wall_remaining, uint64_t &conflicts);

/**
 * A resumable incremental cover query: the state behind the Incremental
 * engine, exposed so retry ladders can escalate budgets *without*
 * discarding the unrolled frames and learned clauses.
 *
 * run() executes (or resumes) the deepening loop under the given
 * budgets. A Timeout answer does not settle the session: calling run()
 * again retries from the exact bound that timed out, on the same solver
 * — the escalated attempt starts where the starved one stopped instead
 * of re-encoding 1..k frames. Covered/Unreachable answers settle the
 * session; further run() calls return the cached result.
 */
class CoverSession
{
  public:
    CoverSession(const Netlist &nl, NetId target, const BmcOptions &opts);

    /** Run or resume with the budgets given at construction. */
    BmcResult run();

    /** Run or resume under explicit budgets (an escalation rung). */
    BmcResult run(int64_t conflict_budget, double wall_budget_seconds);

    /** True once a Covered/Unreachable answer has been reached. */
    bool settled() const { return settled_; }

  private:
    const Netlist &nl_;
    NetId target_;
    BmcOptions opts_;
    /** Phase 1: reset-state deepening, one frame appended per bound. */
    Unroller reset_unroller_;
    /** Phase 2: free-state unreachability instance (built lazily). */
    std::unique_ptr<Unroller> free_unroller_;
    int next_bound_ = 1;
    bool phase1_done_ = false;
    bool settled_ = false;
    BmcResult settled_result_;
};

/**
 * Retry policy for check_cover_escalating: on Timeout, re-run with the
 * conflict (and wall) budget grown geometrically, up to @p max_attempts
 * total attempts.
 */
struct EscalationPolicy
{
    /** Total attempts, including the first (>= 1). */
    int max_attempts = 1;
    /** Budget multiplier applied between attempts (> 1 to escalate). */
    double budget_growth = 4.0;
};

struct EscalatedBmcResult
{
    BmcResult result;
    /** Attempts actually spent (1 = first try sufficed). */
    int attempts = 1;
    /** Conflicts summed over every attempt. */
    uint64_t total_conflicts = 0;
};

/**
 * check_cover wrapped in retry-with-escalation: each Timeout retries
 * with budgets scaled by policy.budget_growth, up to
 * policy.max_attempts attempts. With the Incremental engine the
 * attempts share one CoverSession, so a retry resumes the timed-out
 * bound with a bigger budget instead of re-unrolling from scratch;
 * with the Scratch engine each attempt is an independent check_cover.
 * A result that is still Timeout after the final attempt is the
 * caller's signal to degrade (fuzz fallback) or record a structured
 * Exhausted outcome.
 */
EscalatedBmcResult check_cover_escalating(const Netlist &nl, NetId target,
                                          const BmcOptions &opts,
                                          const EscalationPolicy &policy);

} // namespace vega::formal
