/**
 * @file
 * Sequential equivalence checking.
 *
 * Builds a miter of two netlists with identical port interfaces (shared
 * inputs, XOR-compared outputs) and asks the BMC engine whether any
 * input sequence from reset can make their outputs differ. Used to
 * prove that instrumentation preserves a module's original behaviour
 * (shadow replicas must not disturb the real outputs) and to exhibit
 * concrete activating inputs for failing netlists.
 */
#pragma once

#include "formal/bmc.h"
#include "netlist/netlist.h"

namespace vega::formal {

enum class EquivStatus { Equivalent, Different, Timeout };

const char *equiv_status_name(EquivStatus status);

struct EquivResult
{
    EquivStatus status = EquivStatus::Timeout;
    /** Different only: inputs + both output sets, diff in last cycle. */
    Waveform counterexample;
    int frames = 0;
    /** Equivalence proven by the free-state check (vs bound exhaustion). */
    bool proven_by_induction = false;
};

/**
 * Compare @p a and @p b, which must declare identical input buses and
 * identical output bus names/widths. @p opts bounds the search and
 * selects the deepening engine (BmcOptions::engine passes straight
 * through to check_cover); the assume/state-equality fields are
 * ignored.
 */
EquivResult check_equivalence(const Netlist &a, const Netlist &b,
                              const BmcOptions &opts = {});

/**
 * Splice a copy of @p src into @p dst. Primary inputs of @p src bind to
 * the given nets of @p dst (keyed by src NetId); all other nets and all
 * cells are duplicated with @p suffix appended to their names. Returns
 * the src-net to dst-net mapping. Exposed for building custom miters.
 */
std::vector<NetId>
splice_netlist(Netlist &dst, const Netlist &src,
               const std::vector<std::pair<NetId, NetId>> &input_binding,
               const std::string &suffix);

} // namespace vega::formal
