/**
 * @file
 * Structural Verilog export.
 *
 * Serializes a Netlist (including instrumented failing netlists from the
 * Error Lifting phase, §3.3.2) as a synthesizable gate-level Verilog module
 * so the circuit-level failure models Vega produces can be consumed by
 * external simulators and FPGA flows, as the paper advertises.
 */
#pragma once

#include <ostream>
#include <string>

#include "netlist/netlist.h"

namespace vega {

/** Write @p nl as a structural Verilog module to @p os. */
void write_verilog(const Netlist &nl, std::ostream &os);

/** Convenience: render to a string. */
std::string to_verilog(const Netlist &nl);

} // namespace vega
