/**
 * @file
 * Structural Verilog import.
 *
 * Parses the gate-level subset emitted by verilog_writer.h — module
 * header, port declarations, escaped-identifier wires, constant/mux
 * assigns, primitive gate instances, and VEGA_DFF instances — so the
 * circuit-level failure models Vega exports (§3.3.2) can be read back
 * into a Netlist for simulation, BMC, or re-instrumentation.
 */
#pragma once

#include <string>

#include "netlist/netlist.h"

namespace vega {

/**
 * Parse the first module of @p text into a Netlist. Throws
 * std::runtime_error with a line number on any syntax the subset does
 * not cover.
 */
Netlist read_verilog(const std::string &text);

} // namespace vega
