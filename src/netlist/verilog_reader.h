/**
 * @file
 * Structural Verilog import.
 *
 * Parses the gate-level subset emitted by verilog_writer.h — module
 * header, port declarations, escaped-identifier wires, constant/mux
 * assigns, primitive gate instances, and VEGA_DFF instances — so the
 * circuit-level failure models Vega exports (§3.3.2) can be read back
 * into a Netlist for simulation, BMC, or re-instrumentation.
 *
 * Netlists arriving through this path are untrusted (§6.3 ships them
 * between organizations), so the parser is hardened: truncated,
 * garbage, or structurally inconsistent input (multiply-driven nets,
 * oversized buses, combinational cycles) surfaces as an Expected error
 * with line context — never an uncaught exception or an abort.
 */
#pragma once

#include <string>

#include "common/error.h"
#include "netlist/netlist.h"

namespace vega {

/**
 * Parse the first module of @p text into a Netlist. Every failure —
 * lexical, syntactic, or structural — returns a ParseError /
 * ValidationError with a line number; nothing escapes as an exception.
 */
Expected<Netlist> try_read_verilog(const std::string &text);

/**
 * Throwing wrapper around try_read_verilog: raises std::runtime_error
 * with the rendered error. Prefer try_read_verilog on untrusted input.
 */
Netlist read_verilog(const std::string &text);

} // namespace vega
