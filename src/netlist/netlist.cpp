#include "netlist/netlist.h"

#include <algorithm>
#include <deque>

#include "common/logging.h"

namespace vega {

NetId
Netlist::new_net(const std::string &name)
{
    nets_.push_back(Net{name, kInvalidId, false});
    topo_dirty_ = true;
    return static_cast<NetId>(nets_.size() - 1);
}

CellId
Netlist::add_cell(CellType type, const std::string &name,
                  const std::vector<NetId> &inputs, NetId out)
{
    VEGA_CHECK(static_cast<int>(inputs.size()) == cell_num_inputs(type),
               "cell ", name, " pin count");
    VEGA_CHECK(out < nets_.size(), "cell ", name, " output net");
    VEGA_CHECK(nets_[out].driver == kInvalidId && !nets_[out].is_primary_input,
               "net ", nets_[out].name, " multiply driven");

    Cell c;
    c.type = type;
    c.name = name;
    for (size_t i = 0; i < inputs.size(); ++i) {
        VEGA_CHECK(inputs[i] < nets_.size(), "cell ", name, " input net");
        c.in[i] = inputs[i];
    }
    c.out = out;
    cells_.push_back(c);
    CellId id = static_cast<CellId>(cells_.size() - 1);
    nets_[out].driver = id;
    topo_dirty_ = true;
    return id;
}

CellId
Netlist::add_dff(const std::string &name, NetId d, NetId q, bool init,
                 uint32_t clock_leaf)
{
    CellId id = add_cell(CellType::Dff, name, {d}, q);
    cells_[id].init = init;
    cells_[id].clock_leaf = clock_leaf;
    return id;
}

void
Netlist::mark_input(NetId net)
{
    VEGA_CHECK(nets_[net].driver == kInvalidId,
               "net ", nets_[net].name, " already driven");
    nets_[net].is_primary_input = true;
    topo_dirty_ = true;
}

std::vector<NetId>
Netlist::add_input_bus(const std::string &name, size_t width)
{
    std::vector<NetId> nets;
    nets.reserve(width);
    for (size_t i = 0; i < width; ++i) {
        NetId n = new_net(name + "[" + std::to_string(i) + "]");
        mark_input(n);
        nets.push_back(n);
    }
    add_input_bus_alias(name, nets);
    return nets;
}

void
Netlist::add_input_bus_alias(const std::string &name,
                             const std::vector<NetId> &nets)
{
    VEGA_CHECK(!buses_.count(name), "duplicate bus ", name);
    buses_[name] = nets;
    input_bus_order_.push_back(name);
}

void
Netlist::add_output_bus(const std::string &name,
                        const std::vector<NetId> &nets)
{
    VEGA_CHECK(!buses_.count(name), "duplicate bus ", name);
    buses_[name] = nets;
    output_bus_order_.push_back(name);
}

const std::vector<NetId> &
Netlist::bus(const std::string &name) const
{
    auto it = buses_.find(name);
    VEGA_CHECK(it != buses_.end(), "no bus named ", name);
    return it->second;
}

std::vector<NetId>
Netlist::primary_inputs() const
{
    std::vector<NetId> out;
    for (const auto &name : input_bus_order_)
        for (NetId n : buses_.at(name))
            out.push_back(n);
    return out;
}

std::vector<NetId>
Netlist::primary_outputs() const
{
    std::vector<NetId> out;
    for (const auto &name : output_bus_order_)
        for (NetId n : buses_.at(name))
            out.push_back(n);
    return out;
}

std::vector<CellId>
Netlist::dffs() const
{
    std::vector<CellId> out;
    for (CellId i = 0; i < cells_.size(); ++i)
        if (cells_[i].type == CellType::Dff)
            out.push_back(i);
    return out;
}

std::unordered_map<CellType, size_t>
Netlist::type_histogram() const
{
    std::unordered_map<CellType, size_t> h;
    for (const Cell &c : cells_)
        ++h[c.type];
    return h;
}

const std::vector<CellId> &
Netlist::topo_order() const
{
    if (!topo_dirty_)
        return topo_;

    // Kahn's algorithm over the combinational subgraph. A combinational
    // cell becomes ready once all its input nets are resolved; primary
    // inputs, constants, and DFF Q outputs are resolved from the start.
    std::vector<bool> net_ready(nets_.size(), false);
    for (NetId n = 0; n < nets_.size(); ++n) {
        const Net &net = nets_[n];
        if (net.is_primary_input)
            net_ready[n] = true;
        else if (net.driver != kInvalidId &&
                 cells_[net.driver].type == CellType::Dff)
            net_ready[n] = true;
    }

    // Build reader lists while we are at it.
    readers_.assign(nets_.size(), {});
    for (CellId c = 0; c < cells_.size(); ++c)
        for (int i = 0; i < cells_[c].num_inputs(); ++i)
            readers_[cells_[c].in[i]].push_back(c);

    std::vector<int> missing(cells_.size(), 0);
    std::deque<CellId> ready;
    for (CellId c = 0; c < cells_.size(); ++c) {
        const Cell &cell = cells_[c];
        if (cell.type == CellType::Dff)
            continue;
        int need = 0;
        for (int i = 0; i < cell.num_inputs(); ++i)
            if (!net_ready[cell.in[i]])
                ++need;
        missing[c] = need;
        if (need == 0)
            ready.push_back(c);
    }

    topo_.clear();
    size_t num_comb = 0;
    for (const Cell &c : cells_)
        if (c.type != CellType::Dff)
            ++num_comb;

    while (!ready.empty()) {
        CellId c = ready.front();
        ready.pop_front();
        topo_.push_back(c);
        NetId out = cells_[c].out;
        net_ready[out] = true;
        // readers_ holds one entry per (cell, pin), so a cell reading
        // this net on several pins appears several times — decrement
        // exactly once per occurrence.
        for (CellId r : readers_[out]) {
            if (cells_[r].type == CellType::Dff)
                continue;
            if (--missing[r] == 0)
                ready.push_back(r);
        }
    }

    VEGA_CHECK(topo_.size() == num_comb,
               "combinational cycle in netlist ", name_, " (", topo_.size(),
               " of ", num_comb, " cells ordered)");
    topo_dirty_ = false;
    return topo_;
}

const std::vector<CellId> &
Netlist::readers(NetId net) const
{
    topo_order(); // refreshes readers_ if dirty
    return readers_[net];
}

std::vector<CellId>
Netlist::fanout_cone(CellId root) const
{
    topo_order();
    std::vector<bool> seen(cells_.size(), false);
    std::deque<CellId> work{root};
    seen[root] = true;
    std::vector<CellId> cone;
    while (!work.empty()) {
        CellId c = work.front();
        work.pop_front();
        cone.push_back(c);
        for (CellId r : readers_[cells_[c].out]) {
            if (!seen[r]) {
                seen[r] = true;
                work.push_back(r);
            }
        }
    }
    return cone;
}

void
Netlist::validate() const
{
    Expected<void> ok = check_valid();
    VEGA_CHECK(ok.ok(), "netlist ", name_, ": ", ok.error().context);
    topo_order(); // refreshes the caches check_valid() cannot touch
}

Expected<void>
Netlist::check_valid() const
{
    for (NetId n = 0; n < nets_.size(); ++n) {
        const Net &net = nets_[n];
        bool driven = net.driver != kInvalidId || net.is_primary_input;
        if (!driven)
            return make_error(ErrorCode::ValidationError,
                              "net " + net.name + " undriven");
        if (net.driver != kInvalidId && cells_[net.driver].out != n)
            return make_error(ErrorCode::ValidationError,
                              "net " + net.name + " driver mismatch");
    }
    for (CellId c = 0; c < cells_.size(); ++c) {
        const Cell &cell = cells_[c];
        for (int i = 0; i < cell.num_inputs(); ++i)
            if (cell.in[i] >= nets_.size())
                return make_error(ErrorCode::ValidationError,
                                  "cell " + cell.name + " dangling pin");
        if (cell.out >= nets_.size())
            return make_error(ErrorCode::ValidationError,
                              "cell " + cell.name + " dangling output");
    }

    // Acyclicity of the combinational subgraph, with the same ready
    // rules as topo_order() but without touching the mutable caches or
    // panicking: count how many combinational cells can be ordered.
    std::vector<bool> net_ready(nets_.size(), false);
    for (NetId n = 0; n < nets_.size(); ++n) {
        const Net &net = nets_[n];
        if (net.is_primary_input ||
            (net.driver != kInvalidId &&
             cells_[net.driver].type == CellType::Dff))
            net_ready[n] = true;
    }
    std::vector<std::vector<CellId>> readers(nets_.size());
    for (CellId c = 0; c < cells_.size(); ++c)
        for (int i = 0; i < cells_[c].num_inputs(); ++i)
            readers[cells_[c].in[i]].push_back(c);
    std::vector<int> missing(cells_.size(), 0);
    std::deque<CellId> ready;
    size_t num_comb = 0;
    for (CellId c = 0; c < cells_.size(); ++c) {
        if (cells_[c].type == CellType::Dff)
            continue;
        ++num_comb;
        int need = 0;
        for (int i = 0; i < cells_[c].num_inputs(); ++i)
            if (!net_ready[cells_[c].in[i]])
                ++need;
        missing[c] = need;
        if (need == 0)
            ready.push_back(c);
    }
    size_t ordered = 0;
    while (!ready.empty()) {
        CellId c = ready.front();
        ready.pop_front();
        ++ordered;
        NetId out = cells_[c].out;
        if (net_ready[out])
            continue;
        net_ready[out] = true;
        for (CellId r : readers[out]) {
            if (cells_[r].type == CellType::Dff)
                continue;
            if (--missing[r] == 0)
                ready.push_back(r);
        }
    }
    if (ordered != num_comb)
        return make_error(
            ErrorCode::ValidationError,
            "combinational cycle (" + std::to_string(ordered) + " of " +
                std::to_string(num_comb) + " cells ordered)");
    return {};
}

void
Netlist::invalidate_caches() const
{
    topo_dirty_ = true;
}

} // namespace vega
