#include "netlist/builder.h"

#include "common/logging.h"

namespace vega {

Builder::Builder(Netlist &nl, std::string prefix)
    : nl_(nl), prefix_(std::move(prefix))
{
}

std::string
Builder::next_name(const char *kind)
{
    return prefix_ + "_" + kind + std::to_string(counter_++);
}

NetId
Builder::const0()
{
    NetId out = nl_.new_net(next_name("c0"));
    nl_.add_cell(CellType::Const0, next_name("C0"), {}, out);
    return out;
}

NetId
Builder::const1()
{
    NetId out = nl_.new_net(next_name("c1"));
    nl_.add_cell(CellType::Const1, next_name("C1"), {}, out);
    return out;
}

#define VEGA_GATE1(fn, TYPE)                                                 \
    NetId Builder::fn(NetId a)                                               \
    {                                                                        \
        NetId out = nl_.new_net(next_name("n"));                             \
        nl_.add_cell(CellType::TYPE, next_name(#TYPE), {a}, out);            \
        return out;                                                          \
    }

#define VEGA_GATE2(fn, TYPE)                                                 \
    NetId Builder::fn(NetId a, NetId b)                                      \
    {                                                                        \
        NetId out = nl_.new_net(next_name("n"));                             \
        nl_.add_cell(CellType::TYPE, next_name(#TYPE), {a, b}, out);         \
        return out;                                                          \
    }

VEGA_GATE1(buf, Buf)
VEGA_GATE1(not_, Not)
VEGA_GATE2(and_, And2)
VEGA_GATE2(or_, Or2)
VEGA_GATE2(xor_, Xor2)
VEGA_GATE2(nand_, Nand2)
VEGA_GATE2(nor_, Nor2)
VEGA_GATE2(xnor_, Xnor2)

#undef VEGA_GATE1
#undef VEGA_GATE2

NetId
Builder::mux(NetId a, NetId b, NetId s)
{
    NetId out = nl_.new_net(next_name("n"));
    nl_.add_cell(CellType::Mux2, next_name("MUX2"), {a, b, s}, out);
    return out;
}

NetId
Builder::dff(NetId d, bool init, uint32_t clock_leaf)
{
    NetId q = nl_.new_net(next_name("q"));
    nl_.add_dff(next_name("DFF"), d, q, init, clock_leaf);
    return q;
}

namespace {

template <typename GateFn>
NetId
reduce_tree(const std::vector<NetId> &xs, GateFn gate)
{
    VEGA_CHECK(!xs.empty(), "empty reduction");
    std::vector<NetId> level = xs;
    while (level.size() > 1) {
        std::vector<NetId> next;
        for (size_t i = 0; i + 1 < level.size(); i += 2)
            next.push_back(gate(level[i], level[i + 1]));
        if (level.size() % 2 != 0)
            next.push_back(level.back());
        level = std::move(next);
    }
    return level[0];
}

} // namespace

NetId
Builder::and_n(const std::vector<NetId> &xs)
{
    return reduce_tree(xs, [this](NetId a, NetId b) { return and_(a, b); });
}

NetId
Builder::or_n(const std::vector<NetId> &xs)
{
    return reduce_tree(xs, [this](NetId a, NetId b) { return or_(a, b); });
}

NetId
Builder::xor_n(const std::vector<NetId> &xs)
{
    return reduce_tree(xs, [this](NetId a, NetId b) { return xor_(a, b); });
}

Bus
Builder::buf_bus(const Bus &a)
{
    Bus out;
    out.reserve(a.size());
    for (NetId n : a)
        out.push_back(buf(n));
    return out;
}

Bus
Builder::not_bus(const Bus &a)
{
    Bus out;
    out.reserve(a.size());
    for (NetId n : a)
        out.push_back(not_(n));
    return out;
}

#define VEGA_BUS2(fn, gate)                                                  \
    Bus Builder::fn(const Bus &a, const Bus &b)                              \
    {                                                                        \
        VEGA_CHECK(a.size() == b.size(), "bus width mismatch");              \
        Bus out;                                                             \
        out.reserve(a.size());                                               \
        for (size_t i = 0; i < a.size(); ++i)                                \
            out.push_back(gate(a[i], b[i]));                                 \
        return out;                                                          \
    }

VEGA_BUS2(and_bus, and_)
VEGA_BUS2(or_bus, or_)
VEGA_BUS2(xor_bus, xor_)

#undef VEGA_BUS2

Bus
Builder::mux_bus(const Bus &a, const Bus &b, NetId s)
{
    VEGA_CHECK(a.size() == b.size(), "bus width mismatch");
    Bus out;
    out.reserve(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        out.push_back(mux(a[i], b[i], s));
    return out;
}

Bus
Builder::dff_bus(const Bus &d, uint32_t clock_leaf)
{
    Bus q;
    q.reserve(d.size());
    for (NetId n : d)
        q.push_back(dff(n, false, clock_leaf));
    return q;
}

Bus
Builder::const_bus(size_t width, uint64_t value)
{
    // Share one constant-0 and one constant-1 driver per call.
    NetId c0 = kInvalidId, c1 = kInvalidId;
    Bus out;
    out.reserve(width);
    for (size_t i = 0; i < width; ++i) {
        bool bit = (i < 64) && ((value >> i) & 1);
        if (bit) {
            if (c1 == kInvalidId)
                c1 = const1();
            out.push_back(c1);
        } else {
            if (c0 == kInvalidId)
                c0 = const0();
            out.push_back(c0);
        }
    }
    return out;
}

} // namespace vega
