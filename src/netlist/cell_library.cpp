#include "netlist/cell_library.h"

#include "common/logging.h"

namespace vega {

int
cell_num_inputs(CellType type)
{
    switch (type) {
      case CellType::Const0:
      case CellType::Const1:
        return 0;
      case CellType::Buf:
      case CellType::Not:
      case CellType::Dff:
        return 1;
      case CellType::And2:
      case CellType::Or2:
      case CellType::Xor2:
      case CellType::Nand2:
      case CellType::Nor2:
      case CellType::Xnor2:
        return 2;
      case CellType::Mux2:
        return 3;
    }
    panic("cell_num_inputs: bad type");
}

const char *
cell_type_name(CellType type)
{
    switch (type) {
      case CellType::Const0: return "CONST0";
      case CellType::Const1: return "CONST1";
      case CellType::Buf:    return "BUF";
      case CellType::Not:    return "NOT";
      case CellType::And2:   return "AND2";
      case CellType::Or2:    return "OR2";
      case CellType::Xor2:   return "XOR2";
      case CellType::Nand2:  return "NAND2";
      case CellType::Nor2:   return "NOR2";
      case CellType::Xnor2:  return "XNOR2";
      case CellType::Mux2:   return "MUX2";
      case CellType::Dff:    return "DFF";
    }
    return "?";
}

bool
eval_cell(CellType type, bool a, bool b, bool s)
{
    switch (type) {
      case CellType::Const0: return false;
      case CellType::Const1: return true;
      case CellType::Buf:    return a;
      case CellType::Not:    return !a;
      case CellType::And2:   return a && b;
      case CellType::Or2:    return a || b;
      case CellType::Xor2:   return a != b;
      case CellType::Nand2:  return !(a && b);
      case CellType::Nor2:   return !(a || b);
      case CellType::Xnor2:  return a == b;
      case CellType::Mux2:   return s ? b : a;
      case CellType::Dff:    break;
    }
    panic("eval_cell: DFF is not combinational");
}

const CellTiming &
cell_timing(CellType type)
{
    // Picosecond-scale values consistent with a 28 nm standard cell library
    // under the worst-case (slow-slow, low-voltage, high-temperature) corner
    // that the paper's Aging-Aware STA assumes (§3.2.2).
    static const CellTiming kConst = {0.0, 0.0, 0.0, 0.0};
    static const CellTiming kBuf   = {14.0, 6.0, 0.0, 0.0};
    static const CellTiming kNot   = {11.0, 5.0, 0.0, 0.0};
    static const CellTiming kAnd2  = {24.0, 10.0, 0.0, 0.0};
    static const CellTiming kOr2   = {26.0, 10.0, 0.0, 0.0};
    static const CellTiming kXor2  = {34.0, 14.0, 0.0, 0.0};
    static const CellTiming kNand2 = {18.0, 7.0, 0.0, 0.0};
    static const CellTiming kNor2  = {21.0, 8.0, 0.0, 0.0};
    static const CellTiming kXnor2 = {34.0, 14.0, 0.0, 0.0};
    static const CellTiming kMux2  = {30.0, 12.0, 0.0, 0.0};
    // DFF: clk-to-Q max/min, then setup and hold requirements.
    static const CellTiming kDff   = {52.0, 26.0, 38.0, 16.0};

    switch (type) {
      case CellType::Const0:
      case CellType::Const1: return kConst;
      case CellType::Buf:    return kBuf;
      case CellType::Not:    return kNot;
      case CellType::And2:   return kAnd2;
      case CellType::Or2:    return kOr2;
      case CellType::Xor2:   return kXor2;
      case CellType::Nand2:  return kNand2;
      case CellType::Nor2:   return kNor2;
      case CellType::Xnor2:  return kXnor2;
      case CellType::Mux2:   return kMux2;
      case CellType::Dff:    return kDff;
    }
    panic("cell_timing: bad type");
}

double
cell_aging_sensitivity(CellType type)
{
    // Relative sensitivity of delay to a threshold-voltage shift. Cells with
    // series PMOS stacks (NOR-like pull-ups) degrade faster under NBTI;
    // transmission-gate structures (XOR/MUX) sit in between; NAND-like
    // pull-ups are most robust. Constants are dimensionless multipliers on
    // the alpha-power-law degradation computed in src/aging.
    switch (type) {
      case CellType::Const0:
      case CellType::Const1: return 0.0;
      case CellType::Buf:    return 0.90;
      case CellType::Not:    return 1.00;
      case CellType::And2:   return 1.00;
      case CellType::Or2:    return 1.20;
      case CellType::Xor2:   return 1.10;
      case CellType::Nand2:  return 0.85;
      case CellType::Nor2:   return 1.30;
      case CellType::Xnor2:  return 1.10;
      case CellType::Mux2:   return 1.05;
      case CellType::Dff:    return 0.95;
    }
    panic("cell_aging_sensitivity: bad type");
}

} // namespace vega
