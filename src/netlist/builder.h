/**
 * @file
 * Structural netlist construction helper.
 *
 * Plays the role of the synthesis tool's technology mapper: rtl generators
 * describe functional units gate-by-gate through this fluent API instead of
 * writing Verilog and running Genus/Design Compiler. Every helper allocates
 * uniquely-named nets and cells so the resulting netlist is well-formed by
 * construction.
 */
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace vega {

/** A bus of nets, LSB first. */
using Bus = std::vector<NetId>;

class Builder
{
  public:
    explicit Builder(Netlist &nl, std::string prefix = "u");

    Netlist &netlist() { return nl_; }

    /// @name Single-bit gates (each returns the output net)
    /// @{
    NetId const0();
    NetId const1();
    NetId buf(NetId a);
    NetId not_(NetId a);
    NetId and_(NetId a, NetId b);
    NetId or_(NetId a, NetId b);
    NetId xor_(NetId a, NetId b);
    NetId nand_(NetId a, NetId b);
    NetId nor_(NetId a, NetId b);
    NetId xnor_(NetId a, NetId b);
    /** out = s ? b : a. */
    NetId mux(NetId a, NetId b, NetId s);
    /** D flip-flop; returns Q. */
    NetId dff(NetId d, bool init = false, uint32_t clock_leaf = 0);
    /// @}

    /// @name Multi-input reductions (balanced trees)
    /// @{
    NetId and_n(const std::vector<NetId> &xs);
    NetId or_n(const std::vector<NetId> &xs);
    NetId xor_n(const std::vector<NetId> &xs);
    /// @}

    /// @name Bus helpers
    /// @{
    Bus buf_bus(const Bus &a);
    Bus not_bus(const Bus &a);
    Bus and_bus(const Bus &a, const Bus &b);
    Bus or_bus(const Bus &a, const Bus &b);
    Bus xor_bus(const Bus &a, const Bus &b);
    /** Per-bit mux: s ? b : a. */
    Bus mux_bus(const Bus &a, const Bus &b, NetId s);
    /** Register a whole bus; returns the Q bus. */
    Bus dff_bus(const Bus &d, uint32_t clock_leaf = 0);
    /** Bus of constant bits from the low bits of @p value. */
    Bus const_bus(size_t width, uint64_t value);
    /// @}

  private:
    std::string next_name(const char *kind);

    Netlist &nl_;
    std::string prefix_;
    uint64_t counter_ = 0;
};

} // namespace vega
