/**
 * @file
 * The "vega28" standard cell library.
 *
 * The paper synthesizes the CV32E40P ALU/FPU into a real 28 nm cell library;
 * this module plays that library's role. It defines the primitive cell types
 * a netlist may contain, their logic functions (shared by the simulator and
 * the CNF encoder so both interpret a netlist identically), and their fresh
 * (unaged) timing characteristics. Aging adjustments are layered on top by
 * src/aging (the aging-aware timing library of §3.2.2).
 */
#pragma once

#include <cstdint>
#include <string>

namespace vega {

/** Primitive cell types available to synthesized netlists. */
enum class CellType : uint8_t {
    Const0, ///< constant logical 0 driver
    Const1, ///< constant logical 1 driver
    Buf,    ///< buffer
    Not,    ///< inverter
    And2,
    Or2,
    Xor2,
    Nand2,
    Nor2,
    Xnor2,
    Mux2,   ///< 2:1 mux; inputs (A, B, S): out = S ? B : A
    Dff,    ///< D flip-flop; input (D), output Q, posedge-clocked
};

/** Number of logic input pins for a cell type. */
int cell_num_inputs(CellType type);

/** True for the sequential element (DFF). */
inline bool cell_is_dff(CellType type) { return type == CellType::Dff; }

/** Human-readable type name, e.g. "XOR2". */
const char *cell_type_name(CellType type);

/**
 * Combinational logic function of a cell.
 *
 * Unused inputs must be passed as false. Dff is not a combinational
 * function and must not be evaluated through here.
 */
bool eval_cell(CellType type, bool a, bool b = false, bool s = false);

/**
 * Fresh (unaged) timing characteristics of a cell, in picoseconds.
 *
 * For Dff, delay_max/min are the clk-to-Q arcs and setup/hold are the
 * input-pin constraints of Figure 1.
 */
struct CellTiming
{
    double delay_max; ///< max propagation delay (ps)
    double delay_min; ///< min propagation delay (ps)
    double setup;     ///< setup time (ps), DFF only
    double hold;      ///< hold time (ps), DFF only
};

/** The vega28 timing entry for @p type. */
const CellTiming &cell_timing(CellType type);

/**
 * Per-type BTI aging sensitivity.
 *
 * Scales how strongly a cell's propagation delay reacts to a given
 * threshold-voltage shift; wider cells with more stacked PMOS devices
 * (NOR-like) are more sensitive than NAND-like ones, per §2.3.1.
 */
double cell_aging_sensitivity(CellType type);

} // namespace vega
