#include "netlist/verilog_reader.h"

#include <cctype>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace vega {

namespace {

/** Widest bus the reader accepts; wider declarations are input errors. */
constexpr size_t kMaxBusWidth = 4096;

/**
 * Internal control-flow exception: thrown by Parser::fail, converted to
 * a VegaError at the try_read_verilog boundary. Never escapes.
 */
struct ParseAbort
{
    VegaError error;
};

/**
 * Token stream over the writer's output. Escaped identifiers
 * (backslash to whitespace) become single IDENT tokens without the
 * backslash; punctuation splits into single-character tokens.
 */
class Lexer
{
  public:
    explicit Lexer(const std::string &text) : text_(text) {}

    /** Next token, or empty string at end of input. */
    std::string
    next()
    {
        skip_space_and_comments();
        escaped_ = false;
        if (pos_ >= text_.size())
            return "";
        char c = text_[pos_];
        if (c == '\\') {
            escaped_ = true;
            ++pos_;
            size_t start = pos_;
            while (pos_ < text_.size() && !std::isspace(text_[pos_]))
                ++pos_;
            return text_.substr(start, pos_ - start);
        }
        if (std::isalnum(c) || c == '_' || c == '\'' || c == '.' ||
            c == '$' || c == '[' || c == ']') {
            size_t start = pos_;
            while (pos_ < text_.size() &&
                   (std::isalnum(text_[pos_]) || text_[pos_] == '_' ||
                    text_[pos_] == '\'' || text_[pos_] == '.' ||
                    text_[pos_] == '$' || text_[pos_] == '[' ||
                    text_[pos_] == ']' ||
                    // ':' only continues a bus range like "[1:0]"
                    (text_[pos_] == ':' && pos_ > start &&
                     text_.find('[', start) != std::string::npos &&
                     text_.find('[', start) < pos_)))
                ++pos_;
            return text_.substr(start, pos_ - start);
        }
        ++pos_;
        return std::string(1, c);
    }

    size_t line() const { return line_; }
    /** True when the last token was an escaped identifier. */
    bool escaped() const { return escaped_; }

  private:
    void
    skip_space_and_comments()
    {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == '\n') {
                ++line_;
                ++pos_;
            } else if (std::isspace(c)) {
                ++pos_;
            } else if (c == '/' && pos_ + 1 < text_.size() &&
                       text_[pos_ + 1] == '/') {
                while (pos_ < text_.size() && text_[pos_] != '\n')
                    ++pos_;
            } else {
                break;
            }
        }
    }

    const std::string &text_;
    size_t pos_ = 0;
    size_t line_ = 1;
    bool escaped_ = false;
};

struct Parser
{
    Lexer lex;
    std::string tok;
    bool tok_escaped = false;
    Netlist nl{"parsed"};
    /** Escaped wire name -> NetId. */
    std::map<std::string, NetId> nets;
    /** Input-port bit "bus[i]" -> NetId (pseudo nets, inputs). */
    std::map<std::string, NetId> port_bits;
    /** Output-port bit "bus[i]" -> driving NetId. */
    std::map<std::string, NetId> output_bits;
    std::vector<std::pair<std::string, size_t>> input_buses;
    std::vector<std::pair<std::string, size_t>> output_buses;
    int auto_cell = 0;

    explicit Parser(const std::string &text) : lex(text) { advance(); }

    void
    advance()
    {
        tok = lex.next();
        tok_escaped = lex.escaped();
    }

    [[noreturn]] void
    fail(const std::string &msg)
    {
        std::string near =
            tok.empty() ? "end of input" : "'" + tok + "'";
        throw ParseAbort{make_error(
            ErrorCode::ParseError, "line " + std::to_string(lex.line()) +
                                       ": " + msg + " (near " + near +
                                       ")")};
    }

    void
    expect(const std::string &want)
    {
        if (tok != want)
            fail("expected '" + want + "'");
        advance();
    }

    /** advance(), but truncated input is an error, not a spin. */
    void
    advance_checked()
    {
        if (tok.empty())
            fail("unexpected end of input");
        advance();
    }

    /** Net for an escaped wire name, creating it on first reference. */
    NetId
    net_for(const std::string &name)
    {
        auto it = nets.find(name);
        if (it != nets.end())
            return it->second;
        NetId id = nl.new_net(name);
        nets[name] = id;
        return id;
    }

    /** @p id must still be undriven before it becomes a cell output. */
    void
    ensure_undriven(NetId id)
    {
        const Net &net = nl.net(id);
        if (net.driver != kInvalidId || net.is_primary_input)
            fail("net '" + net.name + "' driven more than once");
    }

    /** Net for an input-port bit reference like "a[0]". */
    NetId
    port_bit_for(const std::string &ref)
    {
        auto it = port_bits.find(ref);
        if (it != port_bits.end())
            return it->second;
        NetId id = nl.new_net(ref + "@port");
        port_bits[ref] = id;
        return id;
    }

    /** Resolve an operand token: escaped wire or input-port bit. */
    NetId
    operand(const std::string &t, bool escaped)
    {
        if (!escaped && is_bus_ref(t))
            return port_bit_for(t);
        return net_for(t);
    }

    bool
    is_bus_ref(const std::string &t)
    {
        return t.find('[') != std::string::npos && t.back() == ']';
    }

    /** Parse a "[N:0]" range token into a width, rejecting garbage. */
    size_t
    bus_width(const std::string &t)
    {
        // Expect "[<digits>:0]".
        size_t colon = t.find(':');
        if (t.size() < 5 || t.front() != '[' || t.back() != ']' ||
            colon == std::string::npos || t.substr(colon) != ":0]")
            fail("malformed bus range");
        size_t msb = 0;
        for (size_t i = 1; i < colon; ++i) {
            if (!std::isdigit(static_cast<unsigned char>(t[i])))
                fail("malformed bus range");
            msb = msb * 10 + size_t(t[i] - '0');
            if (msb >= kMaxBusWidth)
                fail("bus wider than " + std::to_string(kMaxBusWidth) +
                     " bits");
        }
        if (colon == 1)
            fail("malformed bus range");
        return msb + 1;
    }

    void
    parse()
    {
        expect("module");
        if (tok.empty())
            fail("missing module name");
        nl.set_name(tok);
        advance();
        expect("(");
        while (tok != ")") {
            if (tok == ",")
                advance();
            else
                advance_checked();
        }
        expect(")");
        expect(";");

        while (tok != "endmodule" && !tok.empty())
            parse_item();
        expect("endmodule");
        finish_buses();
    }

    void
    parse_item()
    {
        if (tok == "input" || tok == "output") {
            bool is_input = tok == "input";
            advance();
            size_t width = 1;
            if (is_bus_ref(tok)) { // "[N:0]"
                width = bus_width(tok);
                advance();
            }
            std::string name = tok;
            advance_checked();
            expect(";");
            if (name == "clk")
                return; // implicit ideal clock
            for (const auto &[n, w] : input_buses)
                if (n == name)
                    fail("port '" + name + "' declared twice");
            for (const auto &[n, w] : output_buses)
                if (n == name)
                    fail("port '" + name + "' declared twice");
            if (is_input)
                input_buses.emplace_back(name, width);
            else
                output_buses.emplace_back(name, width);
        } else if (tok == "wire") {
            advance();
            if (tok.empty())
                fail("missing wire name");
            net_for(tok);
            advance();
            expect(";");
        } else if (tok == "assign") {
            parse_assign();
        } else if (tok == "buf" || tok == "not" || tok == "and" ||
                   tok == "or" || tok == "xor" || tok == "nand" ||
                   tok == "nor" || tok == "xnor") {
            parse_gate(tok);
        } else if (tok == "VEGA_DFF") {
            parse_dff();
        } else {
            fail("unsupported item");
        }
    }

    void
    parse_assign()
    {
        expect("assign");
        std::string lhs = tok;
        bool lhs_escaped = tok_escaped;
        advance_checked();
        expect("=");

        // Output-port binding: `assign o[i] = <wire>;`
        if (!lhs_escaped && is_bus_ref(lhs)) {
            std::string rhs = tok;
            bool rhs_escaped = tok_escaped;
            advance_checked();
            expect(";");
            if (output_bits.count(lhs))
                fail("output bit " + lhs + " assigned twice");
            output_bits[lhs] = operand(rhs, rhs_escaped);
            return;
        }

        // Forms: constant | wire | port-bit | s ? b : a
        std::string first = tok;
        bool first_escaped = tok_escaped;
        advance_checked();
        if (tok == "?") {
            advance();
            std::string b = tok;
            bool b_escaped = tok_escaped;
            advance_checked();
            expect(":");
            std::string a = tok;
            bool a_escaped = tok_escaped;
            advance_checked();
            expect(";");
            NetId out = net_for(lhs);
            ensure_undriven(out);
            nl.add_cell(CellType::Mux2,
                        "rd_mux" + std::to_string(auto_cell++),
                        {operand(a, a_escaped), operand(b, b_escaped),
                         operand(first, first_escaped)},
                        out);
            return;
        }
        expect(";");
        NetId out = net_for(lhs);
        ensure_undriven(out);
        if (first == "1'b0") {
            nl.add_cell(CellType::Const0,
                        "rd_c0_" + std::to_string(auto_cell++), {}, out);
        } else if (first == "1'b1") {
            nl.add_cell(CellType::Const1,
                        "rd_c1_" + std::to_string(auto_cell++), {}, out);
        } else {
            // Alias (input-port binding or plain buffer): keep a BUF so
            // every net has exactly one driver.
            nl.add_cell(CellType::Buf,
                        "rd_alias" + std::to_string(auto_cell++),
                        {operand(first, first_escaped)}, out);
        }
    }

    void
    parse_gate(const std::string &kind)
    {
        static const std::map<std::string, CellType> kMap = {
            {"buf", CellType::Buf},   {"not", CellType::Not},
            {"and", CellType::And2},  {"or", CellType::Or2},
            {"xor", CellType::Xor2},  {"nand", CellType::Nand2},
            {"nor", CellType::Nor2},  {"xnor", CellType::Xnor2},
        };
        CellType type = kMap.at(kind);
        advance();
        std::string name = tok;
        advance_checked();
        expect("(");
        std::vector<std::string> args;
        std::vector<bool> args_escaped;
        while (tok != ")") {
            if (tok == ",") {
                advance();
            } else {
                args.push_back(tok);
                args_escaped.push_back(tok_escaped);
                advance_checked();
            }
        }
        expect(")");
        expect(";");
        if (args.size() != size_t(cell_num_inputs(type)) + 1)
            fail("wrong pin count on " + kind);
        std::vector<NetId> ins;
        for (size_t i = 1; i < args.size(); ++i)
            ins.push_back(operand(args[i], args_escaped[i]));
        NetId out = net_for(args[0]);
        ensure_undriven(out);
        nl.add_cell(type, name, ins, out);
    }

    void
    parse_dff()
    {
        expect("VEGA_DFF");
        bool init = false;
        if (tok == "#") {
            advance();
            expect("(");
            // .INIT(1'b0)
            if (tok != ".INIT")
                fail("expected .INIT");
            advance();
            expect("(");
            init = tok == "1'b1";
            advance_checked();
            expect(")");
            expect(")");
        }
        std::string name = tok;
        advance_checked();
        expect("(");
        std::string d_name, q_name;
        bool d_escaped = false;
        while (tok != ")") {
            if (tok == ",") {
                advance();
                continue;
            }
            std::string pin = tok; // ".clk" / ".d" / ".q"
            advance_checked();
            expect("(");
            std::string conn = tok;
            bool conn_escaped = tok_escaped;
            advance_checked();
            expect(")");
            if (pin == ".d") {
                d_name = conn;
                d_escaped = conn_escaped;
            } else if (pin == ".q") {
                q_name = conn;
            } else if (pin != ".clk") {
                fail("unknown DFF pin " + pin);
            }
        }
        expect(")");
        expect(";");
        if (d_name.empty() || q_name.empty())
            fail("DFF missing d/q connections");
        NetId q = net_for(q_name);
        ensure_undriven(q);
        nl.add_dff(name, operand(d_name, d_escaped), q, init);
    }

    /**
     * Port buses: input bits are the pseudo nets referenced by alias
     * assigns (created on demand, marked primary inputs here); output
     * bits are the nets recorded from `assign o[i] = ...` bindings.
     */
    void
    finish_buses()
    {
        for (auto &[name, width] : input_buses) {
            std::vector<NetId> bits;
            for (size_t i = 0; i < width; ++i) {
                std::string bit = name + "[" + std::to_string(i) + "]";
                NetId n = port_bit_for(bit);
                if (nl.net(n).driver != kInvalidId)
                    fail("input bit " + bit + " is driven");
                nl.mark_input(n);
                bits.push_back(n);
            }
            nl.add_input_bus_alias(name, bits);
        }
        for (auto &[name, width] : output_buses) {
            std::vector<NetId> bits;
            for (size_t i = 0; i < width; ++i) {
                std::string bit = name + "[" + std::to_string(i) + "]";
                auto it = output_bits.find(bit);
                if (it == output_bits.end())
                    fail("output bit " + bit + " never assigned");
                bits.push_back(it->second);
            }
            nl.add_output_bus(name, bits);
        }
    }
};

} // namespace

Expected<Netlist>
try_read_verilog(const std::string &text)
{
    try {
        Parser p(text);
        p.parse();
        Expected<void> valid = p.nl.check_valid();
        if (!valid)
            return make_error(ErrorCode::ValidationError,
                              "netlist inconsistent after parse: " +
                                  valid.error().context);
        return std::move(p.nl);
    } catch (const ParseAbort &abort) {
        return abort.error;
    } catch (const std::exception &e) {
        // Backstop: nothing below should throw, but malformed input
        // must never escape as an exception.
        return make_error(ErrorCode::ParseError,
                          std::string("internal parse failure: ") +
                              e.what());
    }
}

Netlist
read_verilog(const std::string &text)
{
    Expected<Netlist> parsed = try_read_verilog(text);
    if (!parsed)
        throw std::runtime_error("verilog_reader: " +
                                 parsed.error().to_string());
    return std::move(parsed).value();
}

} // namespace vega
