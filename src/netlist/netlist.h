/**
 * @file
 * Gate-level netlist graph.
 *
 * A Netlist is the artifact every Vega phase operates on: the simulator
 * evaluates it, the aging-aware STA times it, the failure-model
 * instrumentation rewrites it, and the BMC engine unrolls it. It is a
 * directed graph of single-output cells from the vega28 library connected
 * by nets, with named port buses describing the module-level interface.
 *
 * Clock distribution is modeled out-of-band (see rtl/clock_tree.h): every
 * DFF carries the index of the clock-tree leaf that feeds it, and the STA
 * combines per-leaf clock arrival times with the data-path analysis. The
 * logic graph itself sees an ideal clock, matching how the paper's example
 * omits clock buffers from the netlist figure while still analyzing the
 * clock network during STA.
 */
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/error.h"
#include "netlist/cell_library.h"

namespace vega {

using NetId = uint32_t;
using CellId = uint32_t;

/** Sentinel for "no net" / "no cell". */
constexpr uint32_t kInvalidId = 0xffffffffu;

/** A single-output library cell instance. */
struct Cell
{
    CellType type = CellType::Buf;
    std::string name;
    std::array<NetId, 3> in = {kInvalidId, kInvalidId, kInvalidId};
    NetId out = kInvalidId;
    /** DFF only: value Q takes at reset. */
    bool init = false;
    /** DFF only: index of the clock-tree leaf buffer driving this DFF. */
    uint32_t clock_leaf = 0;

    int num_inputs() const { return cell_num_inputs(type); }
};

/** A wire. Driven by exactly one cell or by a primary input. */
struct Net
{
    std::string name;
    CellId driver = kInvalidId;
    bool is_primary_input = false;
};

/**
 * The netlist graph plus its module-level port description.
 *
 * Invariants (checked by validate()): every net has exactly one driver
 * (a cell output or primary-input marking), cell pins reference valid
 * nets, and the combinational subgraph is acyclic.
 */
class Netlist
{
  public:
    explicit Netlist(std::string name = "top") : name_(std::move(name)) {}

    const std::string &name() const { return name_; }
    void set_name(std::string n) { name_ = std::move(n); }

    /// @name Construction
    /// @{
    NetId new_net(const std::string &name);
    CellId add_cell(CellType type, const std::string &name,
                    const std::vector<NetId> &inputs, NetId out);
    CellId add_dff(const std::string &name, NetId d, NetId q,
                   bool init = false, uint32_t clock_leaf = 0);

    /** Mark an undriven net as a primary input. */
    void mark_input(NetId net);

    /** Create @p width fresh nets named name[i] and mark them inputs. */
    std::vector<NetId> add_input_bus(const std::string &name, size_t width);

    /** Register existing nets as the output bus @p name (LSB first). */
    void add_output_bus(const std::string &name,
                        const std::vector<NetId> &nets);

    /** Register existing input nets under a bus name (LSB first). */
    void add_input_bus_alias(const std::string &name,
                             const std::vector<NetId> &nets);
    /// @}

    /// @name Inspection
    /// @{
    size_t num_nets() const { return nets_.size(); }
    size_t num_cells() const { return cells_.size(); }

    const Net &net(NetId id) const { return nets_[id]; }
    const Cell &cell(CellId id) const { return cells_[id]; }
    Cell &cell_mut(CellId id) { topo_dirty_ = true; return cells_[id]; }

    const std::vector<Cell> &cells() const { return cells_; }

    /** Input bus names in declaration order. */
    const std::vector<std::string> &input_bus_names() const
    {
        return input_bus_order_;
    }
    /** Output bus names in declaration order. */
    const std::vector<std::string> &output_bus_names() const
    {
        return output_bus_order_;
    }
    /** Nets of a bus, LSB first. */
    const std::vector<NetId> &bus(const std::string &name) const;
    bool has_bus(const std::string &name) const
    {
        return buses_.count(name) > 0;
    }

    /** All primary-input nets (flattened, declaration order). */
    std::vector<NetId> primary_inputs() const;
    /** All primary-output nets (flattened, declaration order). */
    std::vector<NetId> primary_outputs() const;

    /** All DFF cell ids. */
    std::vector<CellId> dffs() const;

    /** Count of cells per type (for Fig. 8-style statistics). */
    std::unordered_map<CellType, size_t> type_histogram() const;
    /// @}

    /// @name Graph algorithms
    /// @{
    /**
     * Combinational cells in topological order (inputs before outputs).
     * DFFs are excluded: their Q pins are sources, D pins are sinks.
     * Panics if the combinational subgraph has a cycle.
     */
    const std::vector<CellId> &topo_order() const;

    /** Cells reading @p net (computed once, cached; invalidated on edit). */
    const std::vector<CellId> &readers(NetId net) const;

    /**
     * Transitive fanout cone of a cell, crossing DFF boundaries, as used
     * by the shadow-replica construction (§3.3.2). Includes @p root.
     */
    std::vector<CellId> fanout_cone(CellId root) const;

    /** Throw vega::panic on any structural invariant violation. */
    void validate() const;

    /**
     * Non-aborting validate(): reports the first structural invariant
     * violation (undriven net, dangling pin, combinational cycle) as a
     * ValidationError instead of panicking. This is the check untrusted
     * inputs (e.g. parsed Verilog) go through.
     */
    Expected<void> check_valid() const;
    /// @}

    /**
     * Timing scale factor applied to all combinational arcs by the STA.
     *
     * Emulates the synthesis tool optimizing the design to its target
     * frequency: rtl generators set this so the fresh critical path lands
     * just inside the clock period, as a timing-closed tapeout would.
     */
    double timing_scale() const { return timing_scale_; }
    void set_timing_scale(double s) { timing_scale_ = s; }

    /** Clock period this module targets, in ps (e.g. 6000 for 167 MHz). */
    double clock_period_ps() const { return clock_period_ps_; }
    void set_clock_period_ps(double p) { clock_period_ps_ = p; }

  private:
    void invalidate_caches() const;

    std::string name_;
    std::vector<Net> nets_;
    std::vector<Cell> cells_;

    std::unordered_map<std::string, std::vector<NetId>> buses_;
    std::vector<std::string> input_bus_order_;
    std::vector<std::string> output_bus_order_;

    double timing_scale_ = 1.0;
    double clock_period_ps_ = 1000.0;

    mutable bool topo_dirty_ = true;
    mutable std::vector<CellId> topo_;
    mutable std::vector<std::vector<CellId>> readers_;
};

} // namespace vega
