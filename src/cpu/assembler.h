/**
 * @file
 * Fluent assembler for building ISS programs (workloads and generated
 * test blocks) with symbolic labels.
 */
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "cpu/isa.h"

namespace vega::cpu {

class Asm
{
  public:
    /// @name Label management
    /// @{
    /** Bind @p name to the next emitted instruction. */
    void label(const std::string &name);
    /// @}

    /// @name RV32I
    /// @{
    void add(Reg rd, Reg rs1, Reg rs2) { emit({Op::Add, rd, rs1, rs2, 0}); }
    void sub(Reg rd, Reg rs1, Reg rs2) { emit({Op::Sub, rd, rs1, rs2, 0}); }
    void sll(Reg rd, Reg rs1, Reg rs2) { emit({Op::Sll, rd, rs1, rs2, 0}); }
    void slt(Reg rd, Reg rs1, Reg rs2) { emit({Op::Slt, rd, rs1, rs2, 0}); }
    void sltu(Reg rd, Reg rs1, Reg rs2) { emit({Op::Sltu, rd, rs1, rs2, 0}); }
    void xor_(Reg rd, Reg rs1, Reg rs2) { emit({Op::Xor, rd, rs1, rs2, 0}); }
    void srl(Reg rd, Reg rs1, Reg rs2) { emit({Op::Srl, rd, rs1, rs2, 0}); }
    void sra(Reg rd, Reg rs1, Reg rs2) { emit({Op::Sra, rd, rs1, rs2, 0}); }
    void or_(Reg rd, Reg rs1, Reg rs2) { emit({Op::Or, rd, rs1, rs2, 0}); }
    void and_(Reg rd, Reg rs1, Reg rs2) { emit({Op::And, rd, rs1, rs2, 0}); }

    void addi(Reg rd, Reg rs1, int32_t imm) { emit({Op::Addi, rd, rs1, 0, imm}); }
    void slti(Reg rd, Reg rs1, int32_t imm) { emit({Op::Slti, rd, rs1, 0, imm}); }
    void sltiu(Reg rd, Reg rs1, int32_t imm) { emit({Op::Sltiu, rd, rs1, 0, imm}); }
    void xori(Reg rd, Reg rs1, int32_t imm) { emit({Op::Xori, rd, rs1, 0, imm}); }
    void ori(Reg rd, Reg rs1, int32_t imm) { emit({Op::Ori, rd, rs1, 0, imm}); }
    void andi(Reg rd, Reg rs1, int32_t imm) { emit({Op::Andi, rd, rs1, 0, imm}); }
    void slli(Reg rd, Reg rs1, int32_t sh) { emit({Op::Slli, rd, rs1, 0, sh}); }
    void srli(Reg rd, Reg rs1, int32_t sh) { emit({Op::Srli, rd, rs1, 0, sh}); }
    void srai(Reg rd, Reg rs1, int32_t sh) { emit({Op::Srai, rd, rs1, 0, sh}); }
    void lui(Reg rd, uint32_t value) { emit({Op::Lui, rd, 0, 0, int32_t(value)}); }

    /** li pseudo-instruction: lui+addi (or addi alone for small values). */
    void li(Reg rd, uint32_t value);
    void nop() { addi(0, 0, 0); }
    void mv(Reg rd, Reg rs) { addi(rd, rs, 0); }
    /// @}

    /// @name RV32M
    /// @{
    void mul(Reg rd, Reg rs1, Reg rs2) { emit({Op::Mul, rd, rs1, rs2, 0}); }
    void mulh(Reg rd, Reg rs1, Reg rs2) { emit({Op::Mulh, rd, rs1, rs2, 0}); }
    void mulhu(Reg rd, Reg rs1, Reg rs2) { emit({Op::Mulhu, rd, rs1, rs2, 0}); }
    void div(Reg rd, Reg rs1, Reg rs2) { emit({Op::Div, rd, rs1, rs2, 0}); }
    void divu(Reg rd, Reg rs1, Reg rs2) { emit({Op::Divu, rd, rs1, rs2, 0}); }
    void rem(Reg rd, Reg rs1, Reg rs2) { emit({Op::Rem, rd, rs1, rs2, 0}); }
    void remu(Reg rd, Reg rs1, Reg rs2) { emit({Op::Remu, rd, rs1, rs2, 0}); }
    /// @}

    /// @name Memory
    /// @{
    void lw(Reg rd, Reg base, int32_t off) { emit({Op::Lw, rd, base, 0, off}); }
    void sw(Reg src, Reg base, int32_t off) { emit({Op::Sw, 0, base, src, off}); }
    void lb(Reg rd, Reg base, int32_t off) { emit({Op::Lb, rd, base, 0, off}); }
    void lbu(Reg rd, Reg base, int32_t off) { emit({Op::Lbu, rd, base, 0, off}); }
    void sb(Reg src, Reg base, int32_t off) { emit({Op::Sb, 0, base, src, off}); }
    /// @}

    /// @name Control flow (targets are label names)
    /// @{
    void beq(Reg a, Reg b, const std::string &target);
    void bne(Reg a, Reg b, const std::string &target);
    void blt(Reg a, Reg b, const std::string &target);
    void bge(Reg a, Reg b, const std::string &target);
    void bltu(Reg a, Reg b, const std::string &target);
    void bgeu(Reg a, Reg b, const std::string &target);
    void jal(Reg rd, const std::string &target);
    void jalr(Reg rd, Reg rs1, int32_t off) { emit({Op::Jalr, rd, rs1, 0, off}); }
    void j(const std::string &target) { jal(0, target); }
    /// @}

    /// @name F extension
    /// @{
    void fadd_s(FReg rd, FReg rs1, FReg rs2) { emit({Op::FaddS, rd, rs1, rs2, 0}); }
    void fsub_s(FReg rd, FReg rs1, FReg rs2) { emit({Op::FsubS, rd, rs1, rs2, 0}); }
    void fmul_s(FReg rd, FReg rs1, FReg rs2) { emit({Op::FmulS, rd, rs1, rs2, 0}); }
    void feq_s(Reg rd, FReg rs1, FReg rs2) { emit({Op::FeqS, rd, rs1, rs2, 0}); }
    void flt_s(Reg rd, FReg rs1, FReg rs2) { emit({Op::FltS, rd, rs1, rs2, 0}); }
    void fle_s(Reg rd, FReg rs1, FReg rs2) { emit({Op::FleS, rd, rs1, rs2, 0}); }
    void fmin_s(FReg rd, FReg rs1, FReg rs2) { emit({Op::FminS, rd, rs1, rs2, 0}); }
    void fmax_s(FReg rd, FReg rs1, FReg rs2) { emit({Op::FmaxS, rd, rs1, rs2, 0}); }
    void fmv_w_x(FReg rd, Reg rs1) { emit({Op::FmvWX, rd, rs1, 0, 0}); }
    void fmv_x_w(Reg rd, FReg rs1) { emit({Op::FmvXW, rd, rs1, 0, 0}); }
    void flw(FReg rd, Reg base, int32_t off) { emit({Op::Flw, rd, base, 0, off}); }
    void fsw(FReg src, Reg base, int32_t off) { emit({Op::Fsw, 0, base, src, off}); }
    /// @}

    /// @name CSR / environment
    /// @{
    void csrr_fflags(Reg rd) { emit({Op::CsrrFflags, rd, 0, 0, 0}); }
    void csrw_fflags(Reg rs1) { emit({Op::CsrwFflags, 0, rs1, 0, 0}); }
    void clear_fflags() { csrw_fflags(0); }
    void halt() { emit({Op::Halt, 0, 0, 0, 0}); }
    /// @}

    /** Resolve labels and return the program. Panics on unbound labels. */
    std::vector<Instr> finish();

    size_t size() const { return program_.size(); }

    /** Append an already-resolved instruction (no label fixup). */
    void emit_raw(const Instr &i) { program_.push_back(i); }

  private:
    void emit(Instr i) { program_.push_back(i); }
    void branch_to(Op op, Reg a, Reg b, const std::string &target);

    std::vector<Instr> program_;
    std::unordered_map<std::string, int32_t> labels_;
    /** Instruction index -> unresolved target label. */
    std::vector<std::pair<size_t, std::string>> fixups_;
};

} // namespace vega::cpu
