/**
 * @file
 * Instruction-set simulator for the evaluation CPU.
 *
 * In-order, single-issue, one instruction per cycle (+1 for taken
 * control flow), standing in for the Verilator-simulated CV32E40P of the
 * paper's evaluation. Arithmetic uses the golden models (alu_compute,
 * softfp); the gate-level functional units are exercised by the module
 * harness (runtime/module_harness.h) which replays generated test blocks
 * on (possibly failing) netlists.
 *
 * The ISS also produces the two artifacts the Vega workflow needs from
 * software execution:
 *  - a functional-unit trace (one (op, a, b) tuple per ALU/FPU
 *    instruction) that drives Signal Probability Simulation (§3.2.1);
 *  - per-instruction execution counts, from which the profile-guided
 *    integrator derives basic-block frequencies (§3.4.2).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "cpu/isa.h"
#include "rtl/module.h"

namespace vega::cpu {

/** One functional-unit operation observed during execution. */
struct FuTraceEntry
{
    ModuleKind unit = ModuleKind::Alu32;
    uint8_t op = 0; ///< AluOp / FpuOp / MduOp encoding
    uint32_t a = 0;
    uint32_t b = 0;
};

struct IssConfig
{
    /** Stop with Status::Watchdog after this many instructions. */
    uint64_t max_instructions = 100000000ull;
    /** Record the functional-unit trace (costs memory). */
    bool record_fu_trace = false;
    /**
     * Record the data-memory trace (one entry per load/store) for the
     * memory-path substrate's SP workload. Kept separate from
     * record_fu_trace so existing functional-unit profiles stay
     * bit-identical when memory tracing is enabled.
     */
    bool record_mem_trace = false;
    /** Memory size in bytes. */
    size_t memory_bytes = 1 << 20;
};

/**
 * Pluggable functional-unit backend: when attached, the ISS routes ALU
 * and/or FPU operations through it instead of the golden models. The
 * gate-level backend (cpu/netlist_backend.h) executes ops on a (possibly
 * failing) netlist, making hardware faults architecturally visible —
 * including stalls when a handshake signal is corrupted.
 */
class FuBackend
{
  public:
    struct FuResult
    {
        uint32_t value = 0;
        uint8_t flags = 0;   ///< flags raised by this op (FPU only)
        bool stalled = false; ///< handshake never completed
    };

    virtual ~FuBackend() = default;
    virtual FuResult alu(uint8_t op, uint32_t a, uint32_t b) = 0;
    virtual FuResult fpu(uint8_t op, uint32_t a, uint32_t b) = 0;
    virtual FuResult mdu(uint8_t op, uint32_t a, uint32_t b) = 0;
    /** Read the hardware fflags register (FPU backends). */
    virtual uint8_t read_fflags() = 0;
    /** Pulse the flags-clear input (csrw fflags, x0). */
    virtual void clear_fflags() = 0;
    /** One cycle with no operation issued to this unit. */
    virtual void idle() = 0;
};

/**
 * Pluggable data-memory backend modeling an aged SRAM address decoder
 * (src/mem/mem_backend.h). Unlike FuBackend — which corrupts *values* —
 * a decoder fault redirects whole accesses, so the hook returns an
 * access *plan*: where the access actually lands, whether a second row
 * is also selected (multi-select), or whether no row is selected at
 * all. The ISS applies the plan to every load/store, including the
 * FP Flw/Fsw pair.
 */
class MemBackend
{
  public:
    struct Plan
    {
        uint32_t addr = 0;      ///< where the access actually lands
        uint32_t extra = 0;     ///< second selected address (multi-select)
        bool has_extra = false; ///< the extra address is also selected
        /**
         * No wordline rose: the store is dropped; the load returns the
         * precharged-bitline value (all ones).
         */
        bool squash = false;
    };

    virtual ~MemBackend() = default;
    virtual Plan access(uint32_t addr, bool is_store) = 0;
};

/**
 * The functional-unit transaction the next instruction would issue to a
 * mounted gate-level unit — the ISS half of the split-transaction
 * protocol batched execution uses (see Iss::peek_fu_issue).
 */
struct FuIssue
{
    enum class Kind : uint8_t {
        None,        ///< no interaction with the mounted unit
        Op,          ///< alu()/fpu()/mdu() operation
        ReadFflags,  ///< csrr fflags (FPU-mounted only)
        ClearFflags, ///< csrw fflags, x0 (FPU-mounted only)
    };
    Kind kind = Kind::None;
    uint8_t op = 0;
    uint32_t a = 0;
    uint32_t b = 0;
};

class Iss
{
  public:
    /**
     * Why run() stopped. Trap means an access left the architectural
     * envelope (pc outside the program, load/store outside memory) —
     * expected when a faulty gate-level backend corrupts an address or
     * branch target, so it ends the run instead of aborting the
     * process.
     */
    enum class Status { Halted, Watchdog, Stalled, Trap };

    explicit Iss(std::vector<Instr> program, IssConfig cfg = {});

    /** Attach a gate-level ALU; nullptr restores the golden model. */
    void set_alu_backend(FuBackend *backend) { alu_backend_ = backend; }
    /** Attach a gate-level FPU; flags reads also route to it. */
    void set_fpu_backend(FuBackend *backend) { fpu_backend_ = backend; }
    /** Attach a gate-level multiply unit (mul/mulh/mulhu). */
    void set_mdu_backend(FuBackend *backend) { mdu_backend_ = backend; }
    /** Attach a faulty-memory model; nullptr restores ideal memory. */
    void set_mem_backend(MemBackend *backend) { mem_backend_ = backend; }

    /** Clear registers, memory, counters; pc back to 0. */
    void reset();

    /** Run until Halt or the instruction budget expires. */
    Status run();

    /// @name Split-transaction execution (batched wave driver)
    ///
    /// A backend-mounted run() interleaves ISS steps with synchronous
    /// backend calls. Wave execution instead runs the ISS with *no*
    /// backend attached: the driver peeks the transaction the next
    /// instruction would issue to the one mounted unit, ticks 64 such
    /// units together on a BatchSimulator, and feeds each lane's
    /// FuResult back through step_one(). The decode here mirrors
    /// step()'s backend routing exactly, so wave and scalar executions
    /// are architecturally lockstep.
    /// @{

    /** True while run() would keep stepping (no stop condition holds). */
    bool running() const
    {
        return !halted_ && !stalled_ && !trapped_ &&
               instret_ < cfg_.max_instructions;
    }

    /** The Status run() reports for the current stop condition. */
    Status stop_status() const
    {
        if (stalled_)
            return Status::Stalled;
        if (trapped_)
            return Status::Trap;
        return halted_ ? Status::Halted : Status::Watchdog;
    }

    /**
     * The transaction the next instruction would issue to a mounted
     * @p mounted unit (Kind::None for everything else, including an
     * out-of-range pc). Pure: no state changes.
     */
    FuIssue peek_fu_issue(ModuleKind mounted) const;

    /**
     * Execute exactly one instruction. When @p injected is non-null it
     * supplies the mounted unit's response for the transaction
     * peek_fu_issue() reported — the instruction must consume it
     * (checked). With @p injected null the instruction must not need a
     * mounted unit; golden models serve any unmounted ones, exactly as
     * in a scalar run with a single backend attached.
     */
    void step_one(const FuBackend::FuResult *injected = nullptr);
    /// @}

    /// @name Architectural state
    /// @{
    uint32_t reg(Reg r) const { return x_[r]; }
    void set_reg(Reg r, uint32_t v)
    {
        if (r != 0)
            x_[r] = v;
    }
    uint32_t freg(FReg r) const { return f_[r]; }
    void set_freg(FReg r, uint32_t v) { f_[r] = v; }
    uint8_t fflags() const { return fflags_; }

    uint32_t read_u32(uint32_t addr) const;
    void write_u32(uint32_t addr, uint32_t value);
    uint8_t read_u8(uint32_t addr) const;
    void write_u8(uint32_t addr, uint8_t value);
    /// @}

    /// @name Statistics
    /// @{
    uint64_t cycles() const { return cycles_; }
    uint64_t instret() const { return instret_; }
    const std::vector<FuTraceEntry> &fu_trace() const { return fu_trace_; }
    /**
     * Data-memory trace (record_mem_trace): unit = the memory
     * substrate, op = 1 for stores, a = byte address, b = the value
     * written (stores) or read (loads).
     */
    const std::vector<FuTraceEntry> &mem_trace() const { return mem_trace_; }
    /** Execution count per instruction index. */
    const std::vector<uint64_t> &exec_counts() const { return exec_counts_; }
    /// @}

    const std::vector<Instr> &program() const { return program_; }

  private:
    void step();
    /** Claim the injected FU result for the executing instruction. */
    FuBackend::FuResult take_injected()
    {
        FuBackend::FuResult r = *injected_;
        injected_ = nullptr;
        return r;
    }
    /** True when @p bytes at @p addr fit in memory (no u32 wrap). */
    bool mem_ok(uint32_t addr, uint32_t bytes) const
    {
        return uint64_t(addr) + bytes <= mem_.size();
    }

    /**
     * Data-side accesses: apply the memory backend's plan (wrong-row
     * redirect, multi-select, no-select) and record the mem trace.
     * Return false on an out-of-bounds effective address — the caller
     * traps instead of asserting, since a faulty backend can redirect
     * anywhere.
     */
    bool data_read_u32(uint32_t addr, uint32_t &out);
    bool data_write_u32(uint32_t addr, uint32_t value);
    bool data_read_u8(uint32_t addr, uint8_t &out);
    bool data_write_u8(uint32_t addr, uint8_t value);

    std::vector<Instr> program_;
    IssConfig cfg_;
    uint32_t x_[32] = {};
    uint32_t f_[32] = {};
    uint8_t fflags_ = 0;
    uint32_t pc_ = 0;
    std::vector<uint8_t> mem_;
    uint64_t cycles_ = 0;
    uint64_t instret_ = 0;
    bool halted_ = false;
    bool stalled_ = false;
    bool trapped_ = false;
    std::vector<FuTraceEntry> fu_trace_;
    std::vector<FuTraceEntry> mem_trace_;
    std::vector<uint64_t> exec_counts_;
    FuBackend *alu_backend_ = nullptr;
    FuBackend *fpu_backend_ = nullptr;
    FuBackend *mdu_backend_ = nullptr;
    MemBackend *mem_backend_ = nullptr;
    /** Wave-injected FU result for the instruction being stepped. */
    const FuBackend::FuResult *injected_ = nullptr;
};

} // namespace vega::cpu
