#include "cpu/iss.h"

#include <cstring>

#include "common/logging.h"
#include "cpu/alu_ops.h"
#include "cpu/mdu_ops.h"
#include "cpu/softfp.h"

namespace vega::cpu {

Iss::Iss(std::vector<Instr> program, IssConfig cfg)
    : program_(std::move(program)), cfg_(cfg), mem_(cfg.memory_bytes, 0),
      exec_counts_(program_.size(), 0)
{
}

void
Iss::reset()
{
    std::memset(x_, 0, sizeof(x_));
    std::memset(f_, 0, sizeof(f_));
    fflags_ = 0;
    pc_ = 0;
    std::fill(mem_.begin(), mem_.end(), 0);
    cycles_ = 0;
    instret_ = 0;
    halted_ = false;
    stalled_ = false;
    trapped_ = false;
    fu_trace_.clear();
    mem_trace_.clear();
    std::fill(exec_counts_.begin(), exec_counts_.end(), 0);
}

uint32_t
Iss::read_u32(uint32_t addr) const
{
    VEGA_CHECK(mem_ok(addr, 4), "load out of bounds: ", addr);
    uint32_t v;
    std::memcpy(&v, &mem_[addr], 4);
    return v;
}

void
Iss::write_u32(uint32_t addr, uint32_t value)
{
    VEGA_CHECK(mem_ok(addr, 4), "store out of bounds: ", addr);
    std::memcpy(&mem_[addr], &value, 4);
}

uint8_t
Iss::read_u8(uint32_t addr) const
{
    VEGA_CHECK(addr < mem_.size(), "load out of bounds: ", addr);
    return mem_[addr];
}

void
Iss::write_u8(uint32_t addr, uint8_t value)
{
    VEGA_CHECK(addr < mem_.size(), "store out of bounds: ", addr);
    mem_[addr] = value;
}

bool
Iss::data_read_u32(uint32_t addr, uint32_t &out)
{
    MemBackend::Plan plan;
    plan.addr = addr;
    if (mem_backend_)
        plan = mem_backend_->access(addr, false);
    if (plan.squash) {
        out = 0xffffffffu; // precharged bitlines, no row selected
    } else {
        if (!mem_ok(plan.addr, 4))
            return false;
        std::memcpy(&out, &mem_[plan.addr], 4);
        if (plan.has_extra) {
            // Two wordlines up: the read senses the wired-OR of both rows.
            if (!mem_ok(plan.extra, 4))
                return false;
            uint32_t other;
            std::memcpy(&other, &mem_[plan.extra], 4);
            out |= other;
        }
    }
    if (cfg_.record_mem_trace)
        mem_trace_.push_back({ModuleKind::MemDec16, 0, addr, out});
    return true;
}

bool
Iss::data_write_u32(uint32_t addr, uint32_t value)
{
    MemBackend::Plan plan;
    plan.addr = addr;
    if (mem_backend_)
        plan = mem_backend_->access(addr, true);
    if (!plan.squash) {
        if (!mem_ok(plan.addr, 4))
            return false;
        std::memcpy(&mem_[plan.addr], &value, 4);
        if (plan.has_extra) {
            if (!mem_ok(plan.extra, 4))
                return false;
            std::memcpy(&mem_[plan.extra], &value, 4);
        }
    }
    if (cfg_.record_mem_trace)
        mem_trace_.push_back({ModuleKind::MemDec16, 1, addr, value});
    return true;
}

bool
Iss::data_read_u8(uint32_t addr, uint8_t &out)
{
    MemBackend::Plan plan;
    plan.addr = addr;
    if (mem_backend_)
        plan = mem_backend_->access(addr, false);
    if (plan.squash) {
        out = 0xff;
    } else {
        if (!mem_ok(plan.addr, 1))
            return false;
        out = mem_[plan.addr];
        if (plan.has_extra) {
            if (!mem_ok(plan.extra, 1))
                return false;
            out |= mem_[plan.extra];
        }
    }
    if (cfg_.record_mem_trace)
        mem_trace_.push_back({ModuleKind::MemDec16, 0, addr, out});
    return true;
}

bool
Iss::data_write_u8(uint32_t addr, uint8_t value)
{
    MemBackend::Plan plan;
    plan.addr = addr;
    if (mem_backend_)
        plan = mem_backend_->access(addr, true);
    if (!plan.squash) {
        if (!mem_ok(plan.addr, 1))
            return false;
        mem_[plan.addr] = value;
        if (plan.has_extra) {
            if (!mem_ok(plan.extra, 1))
                return false;
            mem_[plan.extra] = value;
        }
    }
    if (cfg_.record_mem_trace)
        mem_trace_.push_back({ModuleKind::MemDec16, 1, addr, value});
    return true;
}

Iss::Status
Iss::run()
{
    while (!halted_) {
        if (stalled_)
            return Status::Stalled;
        if (trapped_)
            return Status::Trap;
        if (instret_ >= cfg_.max_instructions)
            return Status::Watchdog;
        step();
    }
    if (stalled_)
        return Status::Stalled;
    return trapped_ ? Status::Trap : Status::Halted;
}

namespace {

AluOp
alu_op_for(Op op)
{
    switch (op) {
      case Op::Add: case Op::Addi: return AluOp::Add;
      case Op::Sub: return AluOp::Sub;
      case Op::Sll: case Op::Slli: return AluOp::Sll;
      case Op::Slt: case Op::Slti: return AluOp::Slt;
      case Op::Sltu: case Op::Sltiu: return AluOp::Sltu;
      case Op::Xor: case Op::Xori: return AluOp::Xor;
      case Op::Srl: case Op::Srli: return AluOp::Srl;
      case Op::Sra: case Op::Srai: return AluOp::Sra;
      case Op::Or: case Op::Ori: return AluOp::Or;
      case Op::And: case Op::Andi: return AluOp::And;
      default: panic("not an ALU op");
    }
}

fp::FpuOp
fpu_op_for(Op op)
{
    switch (op) {
      case Op::FaddS: return fp::FpuOp::Add;
      case Op::FsubS: return fp::FpuOp::Sub;
      case Op::FmulS: return fp::FpuOp::Mul;
      case Op::FeqS: return fp::FpuOp::Eq;
      case Op::FltS: return fp::FpuOp::Lt;
      case Op::FleS: return fp::FpuOp::Le;
      case Op::FminS: return fp::FpuOp::Min;
      case Op::FmaxS: return fp::FpuOp::Max;
      default: panic("not an FPU op");
    }
}

} // namespace

void
Iss::step()
{
    // A corrupted branch/jump target from a faulty backend can land
    // anywhere; that's a trap, not an internal invariant violation.
    if (pc_ >= program_.size()) {
        trapped_ = true;
        return;
    }
    const Instr &i = program_[pc_];
    ++exec_counts_[pc_];
    ++instret_;
    ++cycles_;
    uint32_t next_pc = pc_ + 1;
    bool used_alu = false, used_fpu = false, used_mdu = false;

    auto take_branch = [&](bool taken) {
        if (taken) {
            next_pc = uint32_t(i.imm);
            ++cycles_; // taken-branch bubble
        }
    };

    switch (i.op) {
      // --- ALU-module ops ------------------------------------------------
      case Op::Add: case Op::Sub: case Op::Sll: case Op::Slt:
      case Op::Sltu: case Op::Xor: case Op::Srl: case Op::Sra:
      case Op::Or: case Op::And:
      case Op::Addi: case Op::Slti: case Op::Sltiu: case Op::Xori:
      case Op::Ori: case Op::Andi: case Op::Slli: case Op::Srli:
      case Op::Srai: {
        AluOp op = alu_op_for(i.op);
        bool has_imm = i.op >= Op::Addi && i.op <= Op::Srai;
        uint32_t a = x_[i.rs1];
        uint32_t b = has_imm ? uint32_t(i.imm) : x_[i.rs2];
        if (cfg_.record_fu_trace)
            fu_trace_.push_back({ModuleKind::Alu32, uint8_t(op), a, b});
        if (alu_backend_ || injected_) {
            used_alu = true;
            FuBackend::FuResult r = injected_
                                        ? take_injected()
                                        : alu_backend_->alu(uint8_t(op), a, b);
            if (r.stalled)
                stalled_ = true;
            set_reg(i.rd, r.value);
        } else {
            set_reg(i.rd, alu_compute(op, a, b));
        }
        break;
      }
      case Op::Lui:
        set_reg(i.rd, uint32_t(i.imm) & 0xfffff000u);
        break;
      case Op::Auipc:
        set_reg(i.rd, (uint32_t(i.imm) & 0xfffff000u) + pc_ * 4);
        break;

      // --- RV32M multiply (routed through the MDU module) -----------------
      case Op::Mul: case Op::Mulh: case Op::Mulhu: {
        MduOp op = i.op == Op::Mul    ? MduOp::Mul
                   : i.op == Op::Mulh ? MduOp::Mulh
                                      : MduOp::Mulhu;
        uint32_t a = x_[i.rs1], b = x_[i.rs2];
        if (cfg_.record_fu_trace)
            fu_trace_.push_back({ModuleKind::Mdu32, uint8_t(op), a, b});
        if (mdu_backend_ || injected_) {
            used_mdu = true;
            FuBackend::FuResult r = injected_
                                        ? take_injected()
                                        : mdu_backend_->mdu(uint8_t(op), a, b);
            if (r.stalled)
                stalled_ = true;
            set_reg(i.rd, r.value);
        } else {
            set_reg(i.rd, mdu_compute(op, a, b));
        }
        break;
      }
      case Op::Div: {
        int32_t a = int32_t(x_[i.rs1]), b = int32_t(x_[i.rs2]);
        int32_t q = b == 0 ? -1
                    : (a == INT32_MIN && b == -1) ? a
                                                  : a / b;
        set_reg(i.rd, uint32_t(q));
        break;
      }
      case Op::Divu:
        set_reg(i.rd, x_[i.rs2] == 0 ? 0xffffffffu : x_[i.rs1] / x_[i.rs2]);
        break;
      case Op::Rem: {
        int32_t a = int32_t(x_[i.rs1]), b = int32_t(x_[i.rs2]);
        int32_t r = b == 0 ? a : (a == INT32_MIN && b == -1) ? 0 : a % b;
        set_reg(i.rd, uint32_t(r));
        break;
      }
      case Op::Remu:
        set_reg(i.rd, x_[i.rs2] == 0 ? x_[i.rs1] : x_[i.rs1] % x_[i.rs2]);
        break;

      // --- Memory ----------------------------------------------------------
      // A faulty backend can corrupt an address register, so accesses
      // trap on out-of-bounds instead of asserting.
      case Op::Lw: {
        uint32_t addr = x_[i.rs1] + uint32_t(i.imm);
        uint32_t v;
        if (!data_read_u32(addr, v)) {
            trapped_ = true;
            return;
        }
        set_reg(i.rd, v);
        ++cycles_; // load-use latency
        break;
      }
      case Op::Sw: {
        uint32_t addr = x_[i.rs1] + uint32_t(i.imm);
        if (!data_write_u32(addr, x_[i.rs2])) {
            trapped_ = true;
            return;
        }
        break;
      }
      case Op::Lb: {
        uint32_t addr = x_[i.rs1] + uint32_t(i.imm);
        uint8_t v;
        if (!data_read_u8(addr, v)) {
            trapped_ = true;
            return;
        }
        set_reg(i.rd, uint32_t(int32_t(int8_t(v))));
        ++cycles_;
        break;
      }
      case Op::Lbu: {
        uint32_t addr = x_[i.rs1] + uint32_t(i.imm);
        uint8_t v;
        if (!data_read_u8(addr, v)) {
            trapped_ = true;
            return;
        }
        set_reg(i.rd, v);
        ++cycles_;
        break;
      }
      case Op::Sb: {
        uint32_t addr = x_[i.rs1] + uint32_t(i.imm);
        if (!data_write_u8(addr, uint8_t(x_[i.rs2]))) {
            trapped_ = true;
            return;
        }
        break;
      }

      // --- Control ---------------------------------------------------------
      case Op::Beq: take_branch(x_[i.rs1] == x_[i.rs2]); break;
      case Op::Bne: take_branch(x_[i.rs1] != x_[i.rs2]); break;
      case Op::Blt:
        take_branch(int32_t(x_[i.rs1]) < int32_t(x_[i.rs2]));
        break;
      case Op::Bge:
        take_branch(int32_t(x_[i.rs1]) >= int32_t(x_[i.rs2]));
        break;
      case Op::Bltu: take_branch(x_[i.rs1] < x_[i.rs2]); break;
      case Op::Bgeu: take_branch(x_[i.rs1] >= x_[i.rs2]); break;
      case Op::Jal:
        set_reg(i.rd, (pc_ + 1) * 4);
        next_pc = uint32_t(i.imm);
        ++cycles_;
        break;
      case Op::Jalr:
        set_reg(i.rd, (pc_ + 1) * 4);
        next_pc = (x_[i.rs1] + uint32_t(i.imm)) / 4;
        ++cycles_;
        break;

      // --- FPU-module ops ----------------------------------------------------
      case Op::FaddS: case Op::FsubS: case Op::FmulS: case Op::FminS:
      case Op::FmaxS: case Op::FeqS: case Op::FltS: case Op::FleS: {
        fp::FpuOp op = fpu_op_for(i.op);
        bool to_xreg = i.op == Op::FeqS || i.op == Op::FltS ||
                       i.op == Op::FleS;
        uint32_t a = f_[i.rs1], b = f_[i.rs2];
        if (cfg_.record_fu_trace)
            fu_trace_.push_back({ModuleKind::Fpu32, uint8_t(op), a, b});
        uint32_t bits;
        if (fpu_backend_ || injected_) {
            used_fpu = true;
            FuBackend::FuResult r = injected_
                                        ? take_injected()
                                        : fpu_backend_->fpu(uint8_t(op), a, b);
            if (r.stalled)
                stalled_ = true;
            bits = r.value;
            // Hardware owns the sticky flags register in this mode.
        } else {
            fp::FpResult r = fp::fpu_compute(op, a, b);
            bits = r.bits;
            fflags_ |= r.flags;
        }
        if (to_xreg)
            set_reg(i.rd, bits);
        else
            f_[i.rd] = bits;
        break;
      }
      case Op::FmvWX:
        f_[i.rd] = x_[i.rs1];
        break;
      case Op::FmvXW:
        set_reg(i.rd, f_[i.rs1]);
        break;
      case Op::Flw: {
        uint32_t v;
        if (!data_read_u32(x_[i.rs1] + uint32_t(i.imm), v)) {
            trapped_ = true;
            return;
        }
        f_[i.rd] = v;
        ++cycles_;
        break;
      }
      case Op::Fsw:
        if (!data_write_u32(x_[i.rs1] + uint32_t(i.imm), f_[i.rs2])) {
            trapped_ = true;
            return;
        }
        break;

      // --- CSR / environment -------------------------------------------------
      case Op::CsrrFflags:
        if (injected_)
            set_reg(i.rd, take_injected().flags);
        else
            set_reg(i.rd,
                    fpu_backend_ ? fpu_backend_->read_fflags() : fflags_);
        break;
      case Op::CsrwFflags:
        if (injected_) {
            VEGA_CHECK(i.rs1 == 0,
                       "netlist FPU backend only supports clearing fflags");
            used_fpu = true;
            take_injected(); // the wave engine ticked the clear pulse
        } else if (fpu_backend_) {
            VEGA_CHECK(i.rs1 == 0,
                       "netlist FPU backend only supports clearing fflags");
            used_fpu = true;
            fpu_backend_->clear_fflags();
        } else {
            fflags_ = uint8_t(x_[i.rs1] & 0x1f);
        }
        break;
      case Op::Halt:
        halted_ = true;
        break;
    }

    // Unused gate-level units tick along with held inputs, matching the
    // real pipeline where every module sees every clock edge.
    if (alu_backend_ && !used_alu)
        alu_backend_->idle();
    if (fpu_backend_ && !used_fpu)
        fpu_backend_->idle();
    if (mdu_backend_ && !used_mdu)
        mdu_backend_->idle();

    pc_ = next_pc;
}

FuIssue
Iss::peek_fu_issue(ModuleKind mounted) const
{
    FuIssue issue;
    if (pc_ >= program_.size())
        return issue;
    const Instr &i = program_[pc_];
    switch (i.op) {
      case Op::Add: case Op::Sub: case Op::Sll: case Op::Slt:
      case Op::Sltu: case Op::Xor: case Op::Srl: case Op::Sra:
      case Op::Or: case Op::And:
      case Op::Addi: case Op::Slti: case Op::Sltiu: case Op::Xori:
      case Op::Ori: case Op::Andi: case Op::Slli: case Op::Srli:
      case Op::Srai:
        if (mounted == ModuleKind::Alu32) {
            bool has_imm = i.op >= Op::Addi && i.op <= Op::Srai;
            issue.kind = FuIssue::Kind::Op;
            issue.op = uint8_t(alu_op_for(i.op));
            issue.a = x_[i.rs1];
            issue.b = has_imm ? uint32_t(i.imm) : x_[i.rs2];
        }
        break;
      case Op::Mul: case Op::Mulh: case Op::Mulhu:
        if (mounted == ModuleKind::Mdu32) {
            issue.kind = FuIssue::Kind::Op;
            issue.op = uint8_t(i.op == Op::Mul    ? MduOp::Mul
                               : i.op == Op::Mulh ? MduOp::Mulh
                                                  : MduOp::Mulhu);
            issue.a = x_[i.rs1];
            issue.b = x_[i.rs2];
        }
        break;
      case Op::FaddS: case Op::FsubS: case Op::FmulS: case Op::FminS:
      case Op::FmaxS: case Op::FeqS: case Op::FltS: case Op::FleS:
        if (mounted == ModuleKind::Fpu32) {
            issue.kind = FuIssue::Kind::Op;
            issue.op = uint8_t(fpu_op_for(i.op));
            issue.a = f_[i.rs1];
            issue.b = f_[i.rs2];
        }
        break;
      case Op::CsrrFflags:
        if (mounted == ModuleKind::Fpu32)
            issue.kind = FuIssue::Kind::ReadFflags;
        break;
      case Op::CsrwFflags:
        if (mounted == ModuleKind::Fpu32)
            issue.kind = FuIssue::Kind::ClearFflags;
        break;
      default:
        break;
    }
    return issue;
}

void
Iss::step_one(const FuBackend::FuResult *injected)
{
    injected_ = injected;
    step();
    VEGA_CHECK(injected_ == nullptr,
               "injected FU result was not consumed — peek_fu_issue() "
               "and the executed instruction disagree");
}

} // namespace vega::cpu
