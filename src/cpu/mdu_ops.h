/**
 * @file
 * Multiply-unit opcode encoding and golden model.
 *
 * The paper demonstrates Vega on the CV32E40P's ALU and FPU and argues
 * the workflow generalizes to other units (§4, §6.3); the mdu32 module
 * is that demonstration here: the RV32M multiply instructions as a
 * third analysis target.
 */
#pragma once

#include <cstdint>

namespace vega {

/** Operation select of the mdu32 module (op[1:0] input bus). */
enum class MduOp : uint8_t {
    Mul = 0,   ///< low 32 bits, signed x signed
    Mulh = 1,  ///< high 32 bits, signed x signed
    Mulhu = 2, ///< high 32 bits, unsigned x unsigned
};

constexpr int kNumMduOps = 3;

/** Golden model; encoding 3 mirrors the netlist mux padding (Mulhu). */
inline uint32_t
mdu_compute(MduOp op, uint32_t a, uint32_t b)
{
    switch (op) {
      case MduOp::Mul:
        return a * b;
      case MduOp::Mulh:
        return uint32_t(
            (int64_t(int32_t(a)) * int64_t(int32_t(b))) >> 32);
      case MduOp::Mulhu:
        return uint32_t((uint64_t(a) * uint64_t(b)) >> 32);
    }
    return uint32_t((uint64_t(a) * uint64_t(b)) >> 32);
}

inline const char *
mdu_op_name(MduOp op)
{
    switch (op) {
      case MduOp::Mul:   return "mul";
      case MduOp::Mulh:  return "mulh";
      case MduOp::Mulhu: return "mulhu";
    }
    return "?";
}

} // namespace vega
