/**
 * @file
 * Gate-level functional-unit backend for the ISS.
 *
 * Drives a Simulator of the ALU or FPU netlist — healthy or a failing
 * netlist from Error Lifting — one clock cycle per ISS instruction, so
 * consecutive instructions hit the module back-to-back exactly as the
 * formal traces assume. Results are read by cloning the pipeline state
 * and advancing the clone past the output registers, leaving the real
 * timeline untouched. The backend is inherently 1-lane (one
 * architectural instruction stream), so it rides the scalar Simulator
 * and picks up the compiled EvalTape underneath it transparently —
 * the speculative save/tick/restore peek is slot-ordered state on the
 * same tape, never a re-lowering.
 *
 * Observable fault behaviour surfaced to the ISS:
 *  - wrong results (architecturally visible, checked by test blocks);
 *  - corrupted sticky flags (visible through csrr fflags);
 *  - a parked valid/ack handshake => FuResult::stalled (Table 6's "S");
 *  - transaction-tag (dbg_out) mismatches, counted as hardware-detected
 *    anomalies (a real core would raise a bus-error interrupt).
 */
#pragma once

#include <memory>

#include "common/rng.h"
#include "cpu/iss.h"
#include "rtl/module.h"
#include "sim/simulator.h"

namespace vega::cpu {

class NetlistBackend : public FuBackend
{
  public:
    /**
     * @param kind    which functional unit @p netlist implements
     * @param netlist healthy or failing module netlist
     * @param has_random_input true when the failing netlist carries the
     *        "fm_rand" input bus (FaultConstant::RandomInput)
     * @param seed    RNG seed for the fm_rand stream
     */
    NetlistBackend(ModuleKind kind, const Netlist &netlist,
                   bool has_random_input = false, uint64_t seed = 1);

    /**
     * Share a pre-compiled tape instead of lowering @p netlist again.
     * Fleet-scale characterization constructs many short-lived backends
     * over the same failing netlist; one compile amortizes over all of
     * them. The tape (and the netlist it references) must outlive the
     * backend.
     */
    NetlistBackend(ModuleKind kind, std::shared_ptr<const EvalTape> tape,
                   bool has_random_input = false, uint64_t seed = 1);

    FuResult alu(uint8_t op, uint32_t a, uint32_t b) override;
    FuResult fpu(uint8_t op, uint32_t a, uint32_t b) override;
    FuResult mdu(uint8_t op, uint32_t a, uint32_t b) override;
    uint8_t read_fflags() override;
    void clear_fflags() override;
    void idle() override;

    /** dbg_out disagreed with the predicted transaction parity. */
    uint64_t tag_mismatches() const { return tag_mismatches_; }
    /** Module clock cycles consumed so far. */
    uint64_t cycles() const { return sim_.cycle(); }

    Simulator &simulator() { return sim_; }

  private:
    /** Advance one real cycle with current inputs; handle fm_rand. */
    void tick();
    /** Read outputs as of "two cycles after the op entered" via a clone. */
    void peek_outputs(uint32_t &r, uint8_t &flags, bool &valid,
                      bool &ack, bool &dbg);

    ModuleKind kind_;
    const Netlist &nl_;
    Simulator sim_;
    bool has_random_input_;
    Rng rng_;
    bool expected_tag_ = false;     ///< predicted dbg parity
    uint64_t tag_mismatches_ = 0;
};

} // namespace vega::cpu
