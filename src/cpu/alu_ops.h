/**
 * @file
 * ALU opcode encoding and golden model, shared by the ISS and the
 * gate-level ALU netlist's verification.
 */
#pragma once

#include <cstdint>

namespace vega {

/** Operation select of the alu32 module (op[3:0] input bus). */
enum class AluOp : uint8_t {
    Add = 0,
    Sub = 1,
    Sll = 2,
    Slt = 3,
    Sltu = 4,
    Xor = 5,
    Srl = 6,
    Sra = 7,
    Or = 8,
    And = 9,
};

constexpr int kNumAluOps = 10;

/**
 * Golden ALU function. Encodings 10..15 are unused by software and
 * mirror the netlist's mux-padding behaviour (they alias And).
 */
inline uint32_t
alu_compute(AluOp op, uint32_t a, uint32_t b)
{
    uint32_t sh = b & 31;
    switch (op) {
      case AluOp::Add:  return a + b;
      case AluOp::Sub:  return a - b;
      case AluOp::Sll:  return a << sh;
      case AluOp::Slt:  return int32_t(a) < int32_t(b) ? 1 : 0;
      case AluOp::Sltu: return a < b ? 1 : 0;
      case AluOp::Xor:  return a ^ b;
      case AluOp::Srl:  return a >> sh;
      case AluOp::Sra:  return uint32_t(int32_t(a) >> sh);
      case AluOp::Or:   return a | b;
      case AluOp::And:  return a & b;
    }
    return a & b;
}

inline const char *
alu_op_name(AluOp op)
{
    switch (op) {
      case AluOp::Add:  return "add";
      case AluOp::Sub:  return "sub";
      case AluOp::Sll:  return "sll";
      case AluOp::Slt:  return "slt";
      case AluOp::Sltu: return "sltu";
      case AluOp::Xor:  return "xor";
      case AluOp::Srl:  return "srl";
      case AluOp::Sra:  return "sra";
      case AluOp::Or:   return "or";
      case AluOp::And:  return "and";
    }
    return "?";
}

} // namespace vega
