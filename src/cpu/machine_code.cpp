#include "cpu/machine_code.h"

#include "common/logging.h"

namespace vega::cpu {

namespace {

// Base opcodes.
constexpr uint32_t kOpImm = 0x13, kOp = 0x33, kLui = 0x37, kAuipc = 0x17;
constexpr uint32_t kLoad = 0x03, kStore = 0x23, kBranch = 0x63;
constexpr uint32_t kJal = 0x6f, kJalr = 0x67, kSystem = 0x73;
constexpr uint32_t kOpFp = 0x53, kLoadFp = 0x07, kStoreFp = 0x27;
constexpr uint32_t kFflagsCsr = 0x001;

uint32_t
r_type(uint32_t funct7, uint32_t rs2, uint32_t rs1, uint32_t funct3,
       uint32_t rd, uint32_t opcode)
{
    return (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) |
           (rd << 7) | opcode;
}

uint32_t
i_type(int32_t imm, uint32_t rs1, uint32_t funct3, uint32_t rd,
       uint32_t opcode)
{
    VEGA_CHECK(imm >= -2048 && imm < 2048, "I-immediate out of range");
    return (uint32_t(imm & 0xfff) << 20) | (rs1 << 15) | (funct3 << 12) |
           (rd << 7) | opcode;
}

uint32_t
s_type(int32_t imm, uint32_t rs2, uint32_t rs1, uint32_t funct3,
       uint32_t opcode)
{
    VEGA_CHECK(imm >= -2048 && imm < 2048, "S-immediate out of range");
    uint32_t u = uint32_t(imm & 0xfff);
    return ((u >> 5) << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) |
           ((u & 0x1f) << 7) | opcode;
}

uint32_t
b_type(int32_t offset, uint32_t rs2, uint32_t rs1, uint32_t funct3)
{
    VEGA_CHECK(offset >= -4096 && offset < 4096 && (offset & 1) == 0,
               "B-immediate out of range");
    uint32_t u = uint32_t(offset);
    return (((u >> 12) & 1) << 31) | (((u >> 5) & 0x3f) << 25) |
           (rs2 << 20) | (rs1 << 15) | (funct3 << 12) |
           (((u >> 1) & 0xf) << 8) | (((u >> 11) & 1) << 7) | kBranch;
}

uint32_t
j_type(int32_t offset, uint32_t rd)
{
    VEGA_CHECK(offset >= -(1 << 20) && offset < (1 << 20) &&
                   (offset & 1) == 0,
               "J-immediate out of range");
    uint32_t u = uint32_t(offset);
    return (((u >> 20) & 1) << 31) | (((u >> 1) & 0x3ff) << 21) |
           (((u >> 11) & 1) << 20) | (((u >> 12) & 0xff) << 12) |
           (rd << 7) | kJal;
}

int32_t
branch_offset(const Instr &i, size_t pc_index)
{
    return (i.imm - int32_t(pc_index)) * 4;
}

} // namespace

uint32_t
encode(const Instr &i, size_t pc_index)
{
    switch (i.op) {
      case Op::Add:  return r_type(0x00, i.rs2, i.rs1, 0, i.rd, kOp);
      case Op::Sub:  return r_type(0x20, i.rs2, i.rs1, 0, i.rd, kOp);
      case Op::Sll:  return r_type(0x00, i.rs2, i.rs1, 1, i.rd, kOp);
      case Op::Slt:  return r_type(0x00, i.rs2, i.rs1, 2, i.rd, kOp);
      case Op::Sltu: return r_type(0x00, i.rs2, i.rs1, 3, i.rd, kOp);
      case Op::Xor:  return r_type(0x00, i.rs2, i.rs1, 4, i.rd, kOp);
      case Op::Srl:  return r_type(0x00, i.rs2, i.rs1, 5, i.rd, kOp);
      case Op::Sra:  return r_type(0x20, i.rs2, i.rs1, 5, i.rd, kOp);
      case Op::Or:   return r_type(0x00, i.rs2, i.rs1, 6, i.rd, kOp);
      case Op::And:  return r_type(0x00, i.rs2, i.rs1, 7, i.rd, kOp);

      case Op::Addi:  return i_type(i.imm, i.rs1, 0, i.rd, kOpImm);
      case Op::Slti:  return i_type(i.imm, i.rs1, 2, i.rd, kOpImm);
      case Op::Sltiu: return i_type(i.imm, i.rs1, 3, i.rd, kOpImm);
      case Op::Xori:  return i_type(i.imm, i.rs1, 4, i.rd, kOpImm);
      case Op::Ori:   return i_type(i.imm, i.rs1, 6, i.rd, kOpImm);
      case Op::Andi:  return i_type(i.imm, i.rs1, 7, i.rd, kOpImm);
      case Op::Slli:
        return r_type(0x00, uint32_t(i.imm) & 31, i.rs1, 1, i.rd, kOpImm);
      case Op::Srli:
        return r_type(0x00, uint32_t(i.imm) & 31, i.rs1, 5, i.rd, kOpImm);
      case Op::Srai:
        return r_type(0x20, uint32_t(i.imm) & 31, i.rs1, 5, i.rd, kOpImm);

      case Op::Lui:
        return (uint32_t(i.imm) & 0xfffff000u) | (uint32_t(i.rd) << 7) |
               kLui;
      case Op::Auipc:
        return (uint32_t(i.imm) & 0xfffff000u) | (uint32_t(i.rd) << 7) |
               kAuipc;

      case Op::Mul:   return r_type(0x01, i.rs2, i.rs1, 0, i.rd, kOp);
      case Op::Mulh:  return r_type(0x01, i.rs2, i.rs1, 1, i.rd, kOp);
      case Op::Mulhu: return r_type(0x01, i.rs2, i.rs1, 3, i.rd, kOp);
      case Op::Div:   return r_type(0x01, i.rs2, i.rs1, 4, i.rd, kOp);
      case Op::Divu:  return r_type(0x01, i.rs2, i.rs1, 5, i.rd, kOp);
      case Op::Rem:   return r_type(0x01, i.rs2, i.rs1, 6, i.rd, kOp);
      case Op::Remu:  return r_type(0x01, i.rs2, i.rs1, 7, i.rd, kOp);

      case Op::Lw:  return i_type(i.imm, i.rs1, 2, i.rd, kLoad);
      case Op::Lb:  return i_type(i.imm, i.rs1, 0, i.rd, kLoad);
      case Op::Lbu: return i_type(i.imm, i.rs1, 4, i.rd, kLoad);
      case Op::Sw:  return s_type(i.imm, i.rs2, i.rs1, 2, kStore);
      case Op::Sb:  return s_type(i.imm, i.rs2, i.rs1, 0, kStore);

      case Op::Beq:
        return b_type(branch_offset(i, pc_index), i.rs2, i.rs1, 0);
      case Op::Bne:
        return b_type(branch_offset(i, pc_index), i.rs2, i.rs1, 1);
      case Op::Blt:
        return b_type(branch_offset(i, pc_index), i.rs2, i.rs1, 4);
      case Op::Bge:
        return b_type(branch_offset(i, pc_index), i.rs2, i.rs1, 5);
      case Op::Bltu:
        return b_type(branch_offset(i, pc_index), i.rs2, i.rs1, 6);
      case Op::Bgeu:
        return b_type(branch_offset(i, pc_index), i.rs2, i.rs1, 7);
      case Op::Jal:
        return j_type(branch_offset(i, pc_index), i.rd);
      case Op::Jalr:
        return i_type(i.imm, i.rs1, 0, i.rd, kJalr);

      case Op::FaddS: return r_type(0x00, i.rs2, i.rs1, 7, i.rd, kOpFp);
      case Op::FsubS: return r_type(0x04, i.rs2, i.rs1, 7, i.rd, kOpFp);
      case Op::FmulS: return r_type(0x08, i.rs2, i.rs1, 7, i.rd, kOpFp);
      case Op::FminS: return r_type(0x14, i.rs2, i.rs1, 0, i.rd, kOpFp);
      case Op::FmaxS: return r_type(0x14, i.rs2, i.rs1, 1, i.rd, kOpFp);
      case Op::FeqS:  return r_type(0x50, i.rs2, i.rs1, 2, i.rd, kOpFp);
      case Op::FltS:  return r_type(0x50, i.rs2, i.rs1, 1, i.rd, kOpFp);
      case Op::FleS:  return r_type(0x50, i.rs2, i.rs1, 0, i.rd, kOpFp);
      case Op::FmvWX: return r_type(0x78, 0, i.rs1, 0, i.rd, kOpFp);
      case Op::FmvXW: return r_type(0x70, 0, i.rs1, 0, i.rd, kOpFp);
      case Op::Flw:   return i_type(i.imm, i.rs1, 2, i.rd, kLoadFp);
      case Op::Fsw:   return s_type(i.imm, i.rs2, i.rs1, 2, kStoreFp);

      case Op::CsrrFflags:
        // csrrs rd, fflags, x0
        return (kFflagsCsr << 20) | (0u << 15) | (2u << 12) |
               (uint32_t(i.rd) << 7) | kSystem;
      case Op::CsrwFflags:
        // csrrw x0, fflags, rs1
        return (kFflagsCsr << 20) | (uint32_t(i.rs1) << 15) | (1u << 12) |
               (0u << 7) | kSystem;
      case Op::Halt:
        return 0x00100073; // ebreak
    }
    panic("encode: bad opcode");
}

std::vector<uint32_t>
encode_program(const std::vector<Instr> &program)
{
    std::vector<uint32_t> words;
    words.reserve(program.size());
    for (size_t i = 0; i < program.size(); ++i)
        words.push_back(encode(program[i], i));
    return words;
}

namespace {

int32_t
sext(uint32_t value, int bits)
{
    uint32_t mask = 1u << (bits - 1);
    return int32_t((value ^ mask) - mask);
}

} // namespace

std::optional<Instr>
decode(uint32_t w, size_t pc_index)
{
    Instr i;
    uint32_t opcode = w & 0x7f;
    i.rd = Reg((w >> 7) & 31);
    uint32_t funct3 = (w >> 12) & 7;
    i.rs1 = Reg((w >> 15) & 31);
    i.rs2 = Reg((w >> 20) & 31);
    uint32_t funct7 = w >> 25;
    int32_t imm_i = sext(w >> 20, 12);

    switch (opcode) {
      case kOp: {
        static const Op kBase[8] = {Op::Add, Op::Sll, Op::Slt, Op::Sltu,
                                    Op::Xor, Op::Srl, Op::Or, Op::And};
        static const Op kMulDiv[8] = {Op::Mul, Op::Mulh, Op::Mulh /*su*/,
                                      Op::Mulhu, Op::Div, Op::Divu,
                                      Op::Rem, Op::Remu};
        if (funct7 == 0x00) {
            i.op = kBase[funct3];
        } else if (funct7 == 0x20 && funct3 == 0) {
            i.op = Op::Sub;
        } else if (funct7 == 0x20 && funct3 == 5) {
            i.op = Op::Sra;
        } else if (funct7 == 0x01) {
            if (funct3 == 2)
                return std::nullopt; // mulhsu unsupported
            i.op = kMulDiv[funct3];
        } else {
            return std::nullopt;
        }
        return i;
      }
      case kOpImm: {
        i.rs2 = 0; // immediate bits, not a register
        switch (funct3) {
          case 0: i.op = Op::Addi; i.imm = imm_i; return i;
          case 2: i.op = Op::Slti; i.imm = imm_i; return i;
          case 3: i.op = Op::Sltiu; i.imm = imm_i; return i;
          case 4: i.op = Op::Xori; i.imm = imm_i; return i;
          case 6: i.op = Op::Ori; i.imm = imm_i; return i;
          case 7: i.op = Op::Andi; i.imm = imm_i; return i;
          case 1:
            i.op = Op::Slli;
            i.imm = int32_t((w >> 20) & 31);
            return i;
          case 5:
            i.op = funct7 == 0x20 ? Op::Srai : Op::Srli;
            i.imm = int32_t((w >> 20) & 31);
            return i;
        }
        return std::nullopt;
      }
      case kLui:
        i.op = Op::Lui;
        i.imm = int32_t(w & 0xfffff000u);
        i.rs1 = i.rs2 = 0;
        return i;
      case kAuipc:
        i.op = Op::Auipc;
        i.imm = int32_t(w & 0xfffff000u);
        i.rs1 = i.rs2 = 0;
        return i;
      case kLoad:
        if (funct3 == 2)
            i.op = Op::Lw;
        else if (funct3 == 0)
            i.op = Op::Lb;
        else if (funct3 == 4)
            i.op = Op::Lbu;
        else
            return std::nullopt;
        i.imm = imm_i;
        i.rs2 = 0;
        return i;
      case kStore: {
        int32_t imm =
            sext(((w >> 25) << 5) | ((w >> 7) & 0x1f), 12);
        if (funct3 == 2)
            i.op = Op::Sw;
        else if (funct3 == 0)
            i.op = Op::Sb;
        else
            return std::nullopt;
        i.imm = imm;
        i.rd = 0;
        return i;
      }
      case kBranch: {
        uint32_t u = (((w >> 31) & 1) << 12) | (((w >> 7) & 1) << 11) |
                     (((w >> 25) & 0x3f) << 5) | (((w >> 8) & 0xf) << 1);
        int32_t offset = sext(u, 13);
        static const Op kBr[8] = {Op::Beq, Op::Bne, Op::Halt, Op::Halt,
                                  Op::Blt, Op::Bge, Op::Bltu, Op::Bgeu};
        if (funct3 == 2 || funct3 == 3)
            return std::nullopt;
        i.op = kBr[funct3];
        i.imm = int32_t(pc_index) + offset / 4;
        i.rd = 0;
        return i;
      }
      case kJal: {
        uint32_t u = (((w >> 31) & 1) << 20) | (((w >> 12) & 0xff) << 12) |
                     (((w >> 20) & 1) << 11) | (((w >> 21) & 0x3ff) << 1);
        int32_t offset = sext(u, 21);
        i.op = Op::Jal;
        i.imm = int32_t(pc_index) + offset / 4;
        i.rs1 = i.rs2 = 0;
        return i;
      }
      case kJalr:
        if (funct3 != 0)
            return std::nullopt;
        i.op = Op::Jalr;
        i.imm = imm_i;
        i.rs2 = 0;
        return i;
      case kLoadFp:
        if (funct3 != 2)
            return std::nullopt;
        i.op = Op::Flw;
        i.imm = imm_i;
        i.rs2 = 0;
        return i;
      case kStoreFp: {
        if (funct3 != 2)
            return std::nullopt;
        i.op = Op::Fsw;
        i.imm = sext(((w >> 25) << 5) | ((w >> 7) & 0x1f), 12);
        i.rd = 0;
        return i;
      }
      case kOpFp:
        switch (funct7) {
          case 0x00: i.op = Op::FaddS; return i;
          case 0x04: i.op = Op::FsubS; return i;
          case 0x08: i.op = Op::FmulS; return i;
          case 0x14:
            i.op = funct3 == 0 ? Op::FminS : Op::FmaxS;
            return i;
          case 0x50:
            i.op = funct3 == 2 ? Op::FeqS
                               : (funct3 == 1 ? Op::FltS : Op::FleS);
            return i;
          case 0x78: i.op = Op::FmvWX; i.rs2 = 0; return i;
          case 0x70: i.op = Op::FmvXW; i.rs2 = 0; return i;
          default: return std::nullopt;
        }
      case kSystem:
        if (w == 0x00100073) {
            i.op = Op::Halt;
            i.rd = 0;
            i.rs1 = i.rs2 = 0;
            return i;
        }
        if ((w >> 20) == kFflagsCsr && funct3 == 2 &&
            ((w >> 15) & 31) == 0) {
            i.op = Op::CsrrFflags;
            i.rs1 = i.rs2 = 0;
            return i;
        }
        if ((w >> 20) == kFflagsCsr && funct3 == 1 &&
            ((w >> 7) & 31) == 0) {
            i.op = Op::CsrwFflags;
            i.rd = 0;
            i.rs2 = 0;
            return i;
        }
        return std::nullopt;
      default:
        return std::nullopt;
    }
}

} // namespace vega::cpu
