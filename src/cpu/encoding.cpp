#include "cpu/isa.h"

#include <sstream>

namespace vega::cpu {

bool
is_alu_module_op(Op op)
{
    switch (op) {
      case Op::Add: case Op::Sub: case Op::Sll: case Op::Slt:
      case Op::Sltu: case Op::Xor: case Op::Srl: case Op::Sra:
      case Op::Or: case Op::And:
      case Op::Addi: case Op::Slti: case Op::Sltiu: case Op::Xori:
      case Op::Ori: case Op::Andi: case Op::Slli: case Op::Srli:
      case Op::Srai:
        return true;
      default:
        return false;
    }
}

bool
is_fpu_module_op(Op op)
{
    switch (op) {
      case Op::FaddS: case Op::FsubS: case Op::FmulS: case Op::FeqS:
      case Op::FltS: case Op::FleS: case Op::FminS: case Op::FmaxS:
        return true;
      default:
        return false;
    }
}

namespace {

std::string
x(Reg r)
{
    return "x" + std::to_string(r);
}

std::string
f(FReg r)
{
    return "f" + std::to_string(r);
}

} // namespace

std::string
render_asm(const Instr &i)
{
    std::ostringstream os;
    auto rrr = [&](const char *m) {
        os << m << " " << x(i.rd) << ", " << x(i.rs1) << ", " << x(i.rs2);
    };
    auto rri = [&](const char *m) {
        os << m << " " << x(i.rd) << ", " << x(i.rs1) << ", " << i.imm;
    };
    auto fff = [&](const char *m) {
        os << m << " " << f(i.rd) << ", " << f(i.rs1) << ", " << f(i.rs2);
    };
    auto xff = [&](const char *m) {
        os << m << " " << x(i.rd) << ", " << f(i.rs1) << ", " << f(i.rs2);
    };
    auto branch = [&](const char *m) {
        os << m << " " << x(i.rs1) << ", " << x(i.rs2) << ", .L" << i.imm;
    };
    switch (i.op) {
      case Op::Add: rrr("add"); break;
      case Op::Sub: rrr("sub"); break;
      case Op::Sll: rrr("sll"); break;
      case Op::Slt: rrr("slt"); break;
      case Op::Sltu: rrr("sltu"); break;
      case Op::Xor: rrr("xor"); break;
      case Op::Srl: rrr("srl"); break;
      case Op::Sra: rrr("sra"); break;
      case Op::Or: rrr("or"); break;
      case Op::And: rrr("and"); break;
      case Op::Addi: rri("addi"); break;
      case Op::Slti: rri("slti"); break;
      case Op::Sltiu: rri("sltiu"); break;
      case Op::Xori: rri("xori"); break;
      case Op::Ori: rri("ori"); break;
      case Op::Andi: rri("andi"); break;
      case Op::Slli: rri("slli"); break;
      case Op::Srli: rri("srli"); break;
      case Op::Srai: rri("srai"); break;
      case Op::Lui:
        os << "lui " << x(i.rd) << ", " << ((uint32_t(i.imm) >> 12) & 0xfffff);
        break;
      case Op::Auipc:
        os << "auipc " << x(i.rd) << ", " << ((uint32_t(i.imm) >> 12) & 0xfffff);
        break;
      case Op::Mul: rrr("mul"); break;
      case Op::Mulh: rrr("mulh"); break;
      case Op::Mulhu: rrr("mulhu"); break;
      case Op::Div: rrr("div"); break;
      case Op::Divu: rrr("divu"); break;
      case Op::Rem: rrr("rem"); break;
      case Op::Remu: rrr("remu"); break;
      case Op::Lw:
        os << "lw " << x(i.rd) << ", " << i.imm << "(" << x(i.rs1) << ")";
        break;
      case Op::Sw:
        os << "sw " << x(i.rs2) << ", " << i.imm << "(" << x(i.rs1) << ")";
        break;
      case Op::Lb:
        os << "lb " << x(i.rd) << ", " << i.imm << "(" << x(i.rs1) << ")";
        break;
      case Op::Lbu:
        os << "lbu " << x(i.rd) << ", " << i.imm << "(" << x(i.rs1) << ")";
        break;
      case Op::Sb:
        os << "sb " << x(i.rs2) << ", " << i.imm << "(" << x(i.rs1) << ")";
        break;
      case Op::Beq: branch("beq"); break;
      case Op::Bne: branch("bne"); break;
      case Op::Blt: branch("blt"); break;
      case Op::Bge: branch("bge"); break;
      case Op::Bltu: branch("bltu"); break;
      case Op::Bgeu: branch("bgeu"); break;
      case Op::Jal:
        os << "jal " << x(i.rd) << ", .L" << i.imm;
        break;
      case Op::Jalr:
        os << "jalr " << x(i.rd) << ", " << x(i.rs1) << ", " << i.imm;
        break;
      case Op::FaddS: fff("fadd.s"); break;
      case Op::FsubS: fff("fsub.s"); break;
      case Op::FmulS: fff("fmul.s"); break;
      case Op::FeqS: xff("feq.s"); break;
      case Op::FltS: xff("flt.s"); break;
      case Op::FleS: xff("fle.s"); break;
      case Op::FminS: fff("fmin.s"); break;
      case Op::FmaxS: fff("fmax.s"); break;
      case Op::FmvWX:
        os << "fmv.w.x " << f(i.rd) << ", " << x(i.rs1);
        break;
      case Op::FmvXW:
        os << "fmv.x.w " << x(i.rd) << ", " << f(i.rs1);
        break;
      case Op::Flw:
        os << "flw " << f(i.rd) << ", " << i.imm << "(" << x(i.rs1) << ")";
        break;
      case Op::Fsw:
        os << "fsw " << f(i.rs2) << ", " << i.imm << "(" << x(i.rs1) << ")";
        break;
      case Op::CsrrFflags:
        os << "csrr " << x(i.rd) << ", fflags";
        break;
      case Op::CsrwFflags:
        os << "csrw fflags, " << x(i.rs1);
        break;
      case Op::Halt:
        os << "ebreak";
        break;
    }
    return os.str();
}

std::string
render_asm(const std::vector<Instr> &program)
{
    std::ostringstream os;
    for (size_t i = 0; i < program.size(); ++i)
        os << ".L" << i << ":  " << render_asm(program[i]) << "\n";
    return os.str();
}

} // namespace vega::cpu
