#include "cpu/netlist_backend.h"

#include "common/logging.h"

namespace vega::cpu {

NetlistBackend::NetlistBackend(ModuleKind kind, const Netlist &netlist,
                               bool has_random_input, uint64_t seed)
    : kind_(kind), nl_(netlist), sim_(netlist),
      has_random_input_(has_random_input), rng_(seed)
{
    VEGA_CHECK(kind == ModuleKind::Alu32 || kind == ModuleKind::Fpu32 ||
                   kind == ModuleKind::Mdu32,
               "backend supports alu32/fpu32/mdu32 modules");
    if (kind_ == ModuleKind::Fpu32) {
        sim_.set_bus("valid", BitVec(1, 0));
        sim_.set_bus("clear", BitVec(1, 0));
    }
}

NetlistBackend::NetlistBackend(ModuleKind kind,
                               std::shared_ptr<const EvalTape> tape,
                               bool has_random_input, uint64_t seed)
    : kind_(kind), nl_(tape->netlist()), sim_(tape),
      has_random_input_(has_random_input), rng_(seed)
{
    VEGA_CHECK(kind == ModuleKind::Alu32 || kind == ModuleKind::Fpu32 ||
                   kind == ModuleKind::Mdu32,
               "backend supports alu32/fpu32/mdu32 modules");
    if (kind_ == ModuleKind::Fpu32) {
        sim_.set_bus("valid", BitVec(1, 0));
        sim_.set_bus("clear", BitVec(1, 0));
    }
}

void
NetlistBackend::tick()
{
    if (has_random_input_)
        sim_.set_bus("fm_rand", BitVec(1, rng_.next() & 1));
    sim_.step();
}

void
NetlistBackend::peek_outputs(uint32_t &r, uint8_t &flags, bool &valid,
                             bool &ack, bool &dbg)
{
    // One speculative edge commits the in-flight op's outputs without
    // disturbing the real timeline (the clone's inputs are don't-cares
    // for the already-captured stage-1 state).
    auto saved = sim_.save_state();
    Rng saved_rng = rng_;
    tick();
    r = uint32_t(sim_.bus_value("r").to_u64());
    if (kind_ == ModuleKind::Fpu32) {
        flags = uint8_t(sim_.bus_value("flags").to_u64());
        valid = sim_.bus_value("valid_out").to_u64() != 0;
        ack = sim_.bus_value("ack").to_u64() != 0;
        dbg = sim_.bus_value("dbg_out").to_u64() != 0;
    } else {
        flags = 0;
        valid = true;
        ack = true;
        dbg = false;
    }
    sim_.restore_state(saved);
    rng_ = saved_rng;
}

FuBackend::FuResult
NetlistBackend::alu(uint8_t op, uint32_t a, uint32_t b)
{
    VEGA_CHECK(kind_ == ModuleKind::Alu32, "not an ALU backend");
    sim_.set_bus("a", BitVec(32, a));
    sim_.set_bus("b", BitVec(32, b));
    sim_.set_bus("op", BitVec(4, op));
    tick();
    FuResult out;
    uint8_t flags;
    bool valid, ack, dbg;
    peek_outputs(out.value, flags, valid, ack, dbg);
    return out;
}

FuBackend::FuResult
NetlistBackend::mdu(uint8_t op, uint32_t a, uint32_t b)
{
    VEGA_CHECK(kind_ == ModuleKind::Mdu32, "not an MDU backend");
    sim_.set_bus("a", BitVec(32, a));
    sim_.set_bus("b", BitVec(32, b));
    sim_.set_bus("op", BitVec(2, op));
    tick();
    FuResult out;
    uint8_t flags;
    bool valid, ack, dbg;
    peek_outputs(out.value, flags, valid, ack, dbg);
    return out;
}

FuBackend::FuResult
NetlistBackend::fpu(uint8_t op, uint32_t a, uint32_t b)
{
    VEGA_CHECK(kind_ == ModuleKind::Fpu32, "not an FPU backend");
    sim_.set_bus("a", BitVec(32, a));
    sim_.set_bus("b", BitVec(32, b));
    sim_.set_bus("op", BitVec(3, op));
    sim_.set_bus("valid", BitVec(1, 1));
    sim_.set_bus("clear", BitVec(1, 0));
    tick();
    sim_.set_bus("valid", BitVec(1, 0));

    FuResult out;
    uint8_t flags;
    bool valid, ack, dbg;
    peek_outputs(out.value, flags, valid, ack, dbg);
    out.flags = flags;
    out.stalled = !(valid && ack);
    // dbg_out lags the tag toggle by one pipeline stage: at this peek it
    // shows the parity of operations issued strictly before this one.
    if (dbg != expected_tag_)
        ++tag_mismatches_;
    expected_tag_ = !expected_tag_;
    return out;
}

uint8_t
NetlistBackend::read_fflags()
{
    VEGA_CHECK(kind_ == ModuleKind::Fpu32, "fflags live in the FPU");
    uint32_t r;
    uint8_t flags;
    bool valid, ack, dbg;
    peek_outputs(r, flags, valid, ack, dbg);
    return flags;
}

void
NetlistBackend::clear_fflags()
{
    sim_.set_bus("clear", BitVec(1, 1));
    sim_.set_bus("valid", BitVec(1, 0));
    tick();
    sim_.set_bus("clear", BitVec(1, 0));
}

void
NetlistBackend::idle()
{
    if (kind_ == ModuleKind::Fpu32) {
        sim_.set_bus("valid", BitVec(1, 0));
        sim_.set_bus("clear", BitVec(1, 0));
    }
    tick();
}

} // namespace vega::cpu
