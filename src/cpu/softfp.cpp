#include "cpu/softfp.h"

namespace vega::fp {

namespace {

struct Unpacked
{
    bool sign;
    int exp;       ///< raw biased exponent
    uint32_t man;  ///< 23-bit fraction
    bool is_zero;  ///< exp == 0 (subnormals flushed)
    bool is_inf;
    bool is_nan;
    bool is_snan;
};

Unpacked
unpack(uint32_t bits)
{
    Unpacked u;
    u.sign = (bits >> 31) & 1;
    u.exp = (bits >> 23) & 0xff;
    u.man = bits & 0x7fffff;
    u.is_zero = u.exp == 0; // flush-to-zero treats subnormals as zero
    u.is_inf = u.exp == 255 && u.man == 0;
    u.is_nan = u.exp == 255 && u.man != 0;
    u.is_snan = u.is_nan && ((u.man >> 22) & 1) == 0;
    return u;
}

uint32_t
pack(bool sign, int exp, uint32_t man)
{
    return (uint32_t(sign) << 31) | (uint32_t(exp & 0xff) << 23) |
           (man & 0x7fffff);
}

uint32_t
make_inf(bool sign)
{
    return pack(sign, 255, 0);
}

uint32_t
make_zero(bool sign)
{
    return pack(sign, 0, 0);
}

/** 24-bit significand with the implicit leading one (0 for zeros). */
uint32_t
significand(const Unpacked &u)
{
    return u.is_zero ? 0 : ((1u << 23) | u.man);
}

/** Magnitude ordering key: exponent and mantissa as one integer. */
uint32_t
magnitude(const Unpacked &u)
{
    return u.is_zero ? 0 : ((uint32_t(u.exp) << 23) | u.man);
}

/**
 * Round-to-nearest-even and final packing shared by add and mul.
 *
 * @param sign  result sign
 * @param exp   biased exponent of the 1.xx significand in @p man24
 * @param man24 24-bit significand (bit 23 is the leading one)
 * @param g,r,s guard, round, sticky bits below the significand
 */
FpResult
round_pack(bool sign, int exp, uint32_t man24, bool g, bool r, bool s)
{
    FpResult out;
    bool inexact = g || r || s;
    bool round_up = g && (r || s || (man24 & 1));
    uint32_t m = man24 + (round_up ? 1 : 0);
    if (m >> 24) { // rounding carried into a new bit
        m >>= 1;
        ++exp;
    }
    if (inexact)
        out.flags |= kNX;
    if (exp >= 255) {
        out.flags |= kOF | kNX;
        out.bits = make_inf(sign);
        return out;
    }
    if (exp <= 0) { // flush-to-zero underflow
        out.flags |= kUF | kNX;
        out.bits = make_zero(sign);
        return out;
    }
    out.bits = pack(sign, exp, m & 0x7fffff);
    return out;
}

} // namespace

FpResult
fadd(uint32_t abits, uint32_t bbits)
{
    Unpacked a = unpack(abits), b = unpack(bbits);
    FpResult out;

    if (a.is_nan || b.is_nan) {
        out.bits = kQuietNan;
        if (a.is_snan || b.is_snan)
            out.flags |= kNV;
        return out;
    }
    if (a.is_inf && b.is_inf) {
        if (a.sign != b.sign) {
            out.bits = kQuietNan;
            out.flags |= kNV;
        } else {
            out.bits = make_inf(a.sign);
        }
        return out;
    }
    if (a.is_inf) {
        out.bits = make_inf(a.sign);
        return out;
    }
    if (b.is_inf) {
        out.bits = make_inf(b.sign);
        return out;
    }
    if (a.is_zero && b.is_zero) {
        // RNE: -0 only when both addends are -0.
        out.bits = make_zero(a.sign && b.sign);
        return out;
    }
    if (a.is_zero) {
        out.bits = pack(b.sign, b.exp, b.man);
        return out;
    }
    if (b.is_zero) {
        out.bits = pack(a.sign, a.exp, a.man);
        return out;
    }

    // Order by magnitude so the larger operand sets the result exponent
    // and sign.
    Unpacked hi = a, lo = b;
    if (magnitude(a) < magnitude(b)) {
        hi = b;
        lo = a;
    }
    int d = hi.exp - lo.exp;
    bool eff_sub = hi.sign != lo.sign;

    // 27-bit datapath: 24-bit significand plus G, R, S positions.
    uint64_t s_hi = uint64_t(significand(hi)) << 3;
    uint64_t s_lo = uint64_t(significand(lo)) << 3;
    bool sticky = false;
    if (d >= 27) {
        sticky = s_lo != 0;
        s_lo = 0;
    } else if (d > 0) {
        uint64_t lost = s_lo & ((uint64_t(1) << d) - 1);
        sticky = lost != 0;
        s_lo >>= d;
    }

    bool sign = hi.sign;
    int exp = hi.exp;
    uint64_t v;
    if (!eff_sub) {
        v = s_hi + s_lo;
        if (v >> 27) { // carry-out: renormalize right
            sticky = sticky || (v & 1);
            v >>= 1;
            ++exp;
        }
    } else {
        // Sticky participates as a borrow: hi - (lo_shifted + sticky_ulp)
        // is the textbook trick; equivalently subtract and, if sticky,
        // decrement by one ulp at the sticky position. We keep it simple
        // and exact: widen by one sticky bit position.
        uint64_t wide_hi = s_hi << 1;
        uint64_t wide_lo = (s_lo << 1) | (sticky ? 1 : 0);
        uint64_t diff = wide_hi - wide_lo;
        sticky = diff & 1;
        v = diff >> 1;
        if (v == 0 && !sticky) {
            out.bits = make_zero(false); // exact cancellation -> +0
            return out;
        }
        // Normalize: bring the leading one to bit 26.
        while (v != 0 && ((v >> 26) & 1) == 0 && exp > 0) {
            v <<= 1;
            --exp;
        }
        if (v == 0) {
            // Result collapsed below the datapath: flush.
            out.flags |= kUF | kNX;
            out.bits = make_zero(sign);
            return out;
        }
    }

    uint32_t man24 = uint32_t(v >> 3) & 0xffffff;
    bool g = (v >> 2) & 1, r = (v >> 1) & 1;
    bool s = (v & 1) || sticky;
    return round_pack(sign, exp, man24, g, r, s);
}

FpResult
fsub(uint32_t a, uint32_t b)
{
    return fadd(a, b ^ 0x80000000u);
}

FpResult
fmul(uint32_t abits, uint32_t bbits)
{
    Unpacked a = unpack(abits), b = unpack(bbits);
    FpResult out;
    bool sign = a.sign != b.sign;

    if (a.is_nan || b.is_nan) {
        out.bits = kQuietNan;
        if (a.is_snan || b.is_snan)
            out.flags |= kNV;
        return out;
    }
    if ((a.is_inf && b.is_zero) || (b.is_inf && a.is_zero)) {
        out.bits = kQuietNan;
        out.flags |= kNV;
        return out;
    }
    if (a.is_inf || b.is_inf) {
        out.bits = make_inf(sign);
        return out;
    }
    if (a.is_zero || b.is_zero) {
        out.bits = make_zero(sign);
        return out;
    }

    int exp = a.exp + b.exp - 127;
    uint64_t p = uint64_t(significand(a)) * uint64_t(significand(b));
    // p in [2^46, 2^48). Normalize the leading one to bit 47: if it is
    // already there the product is in [2, 4) and the exponent bumps by
    // one; otherwise shift up and keep the exponent.
    if ((p >> 47) & 1)
        ++exp;
    else
        p <<= 1;
    uint32_t man24 = uint32_t(p >> 24) & 0xffffff;
    bool g = (p >> 23) & 1;
    bool r = (p >> 22) & 1;
    bool s = (p & 0x3fffff) != 0;
    return round_pack(sign, exp, man24, g, r, s);
}

namespace {

/** Three-way compare on flushed values: -1, 0, +1. NaNs handled upstream. */
int
order(const Unpacked &a, const Unpacked &b)
{
    bool az = a.is_zero, bz = b.is_zero;
    if (az && bz)
        return 0; // +-0 compare equal
    if (az)
        return b.sign ? 1 : -1;
    if (bz)
        return a.sign ? -1 : 1;
    if (a.sign != b.sign)
        return a.sign ? -1 : 1;
    uint32_t ma = magnitude(a), mb = magnitude(b);
    int mag_cmp = ma < mb ? -1 : (ma > mb ? 1 : 0);
    return a.sign ? -mag_cmp : mag_cmp;
}

} // namespace

FpResult
feq(uint32_t abits, uint32_t bbits)
{
    Unpacked a = unpack(abits), b = unpack(bbits);
    FpResult out;
    if (a.is_nan || b.is_nan) {
        if (a.is_snan || b.is_snan)
            out.flags |= kNV;
        out.bits = 0;
        return out;
    }
    out.bits = order(a, b) == 0 ? 1 : 0;
    return out;
}

FpResult
flt(uint32_t abits, uint32_t bbits)
{
    Unpacked a = unpack(abits), b = unpack(bbits);
    FpResult out;
    if (a.is_nan || b.is_nan) {
        out.flags |= kNV;
        out.bits = 0;
        return out;
    }
    out.bits = order(a, b) < 0 ? 1 : 0;
    return out;
}

FpResult
fle(uint32_t abits, uint32_t bbits)
{
    Unpacked a = unpack(abits), b = unpack(bbits);
    FpResult out;
    if (a.is_nan || b.is_nan) {
        out.flags |= kNV;
        out.bits = 0;
        return out;
    }
    out.bits = order(a, b) <= 0 ? 1 : 0;
    return out;
}

namespace {

FpResult
minmax(uint32_t abits, uint32_t bbits, bool want_max)
{
    Unpacked a = unpack(abits), b = unpack(bbits);
    FpResult out;
    if (a.is_snan || b.is_snan)
        out.flags |= kNV;
    if (a.is_nan && b.is_nan) {
        out.bits = kQuietNan;
        return out;
    }
    if (a.is_nan) {
        out.bits = bbits;
        return out;
    }
    if (b.is_nan) {
        out.bits = abits;
        return out;
    }
    // -0 orders below +0 for min/max.
    int cmp = order(a, b);
    if (cmp == 0 && a.sign != b.sign)
        cmp = a.sign ? -1 : 1;
    bool pick_a = want_max ? cmp >= 0 : cmp <= 0;
    out.bits = pick_a ? abits : bbits;
    return out;
}

} // namespace

FpResult
fmin(uint32_t a, uint32_t b)
{
    return minmax(a, b, false);
}

FpResult
fmax(uint32_t a, uint32_t b)
{
    return minmax(a, b, true);
}

FpResult
fpu_compute(FpuOp op, uint32_t a, uint32_t b)
{
    switch (op) {
      case FpuOp::Add: return fadd(a, b);
      case FpuOp::Sub: return fsub(a, b);
      case FpuOp::Mul: return fmul(a, b);
      case FpuOp::Eq:  return feq(a, b);
      case FpuOp::Lt:  return flt(a, b);
      case FpuOp::Le:  return fle(a, b);
      case FpuOp::Min: return fmin(a, b);
      case FpuOp::Max: return fmax(a, b);
    }
    return {};
}

const char *
fpu_op_name(FpuOp op)
{
    switch (op) {
      case FpuOp::Add: return "fadd.s";
      case FpuOp::Sub: return "fsub.s";
      case FpuOp::Mul: return "fmul.s";
      case FpuOp::Eq:  return "feq.s";
      case FpuOp::Lt:  return "flt.s";
      case FpuOp::Le:  return "fle.s";
      case FpuOp::Min: return "fmin.s";
      case FpuOp::Max: return "fmax.s";
    }
    return "?";
}

} // namespace vega::fp
