/**
 * @file
 * RV32 machine-code encoding and decoding.
 *
 * The aging library ships test blocks as inline assembly (§3.4.1); this
 * layer lowers the structured instructions to the actual RV32IMF+Zicsr
 * instruction words (and back), so suites can also be emitted as raw
 * `.word` streams for environments without an assembler, and so the
 * encoding itself is testable by round trip.
 *
 * Branch/jump immediates: the structured form stores instruction-index
 * targets; encoding converts to byte offsets relative to the
 * instruction's own index (pc = index * 4).
 */
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cpu/isa.h"

namespace vega::cpu {

/**
 * Encode one instruction located at instruction index @p pc_index.
 * Panics on immediates that do not fit their encoding.
 */
uint32_t encode(const Instr &instr, size_t pc_index);

/** Encode a whole program (one word per instruction). */
std::vector<uint32_t> encode_program(const std::vector<Instr> &program);

/**
 * Decode one instruction word at @p pc_index. Returns nullopt for
 * encodings outside the supported subset.
 */
std::optional<Instr> decode(uint32_t word, size_t pc_index);

} // namespace vega::cpu
