/**
 * @file
 * Bit-exact software model of the FPU's arithmetic.
 *
 * This is the golden reference the ISS computes with and the gate-level
 * FPU netlist is verified against. Semantics (chosen to match a compact
 * embedded FPU, and implemented identically in rtl/fpu32):
 *
 *  - IEEE-754 binary32, round-to-nearest-even only.
 *  - Subnormal inputs and outputs are flushed to (signed) zero; flushed
 *    outputs raise UF|NX.
 *  - Any NaN result is the canonical quiet NaN 0x7fc00000.
 *  - RISC-V F-extension flag semantics: NV DZ OF UF NX (bits 4..0).
 */
#pragma once

#include <cstdint>

namespace vega::fp {

/** fflags bits, RISC-V layout. */
enum Flags : uint8_t {
    kNX = 1 << 0, ///< inexact
    kUF = 1 << 1, ///< underflow
    kOF = 1 << 2, ///< overflow
    kDZ = 1 << 3, ///< divide by zero (unused by this FPU)
    kNV = 1 << 4, ///< invalid operation
};

/** Result bits plus the flags the operation raises. */
struct FpResult
{
    uint32_t bits = 0;
    uint8_t flags = 0;
};

constexpr uint32_t kQuietNan = 0x7fc00000u;

FpResult fadd(uint32_t a, uint32_t b);
FpResult fsub(uint32_t a, uint32_t b);
FpResult fmul(uint32_t a, uint32_t b);

/** Comparisons return 0/1 in bits. feq is quiet; flt/fle signal on NaN. */
FpResult feq(uint32_t a, uint32_t b);
FpResult flt(uint32_t a, uint32_t b);
FpResult fle(uint32_t a, uint32_t b);

/** RISC-V fmin/fmax: NaN-suppressing, -0 < +0. */
FpResult fmin(uint32_t a, uint32_t b);
FpResult fmax(uint32_t a, uint32_t b);

/** FPU opcode encoding shared with the netlist (op[2:0] input bus). */
enum class FpuOp : uint8_t {
    Add = 0,
    Sub = 1,
    Mul = 2,
    Eq = 3,
    Lt = 4,
    Le = 5,
    Min = 6,
    Max = 7,
};

/** Dispatch by FpuOp. */
FpResult fpu_compute(FpuOp op, uint32_t a, uint32_t b);

const char *fpu_op_name(FpuOp op);

} // namespace vega::fp
