#include "cpu/batch_backend.h"

#include "common/logging.h"

namespace vega::cpu {

namespace {

int
lowest_lane(uint64_t mask)
{
    return __builtin_ctzll(mask);
}

} // namespace

BatchNetlistEngine::BatchNetlistEngine(ModuleKind kind,
                                       std::shared_ptr<const EvalTape> tape)
    : kind_(kind), sim_(std::move(tape)), rngs_(kLanes), rngs_save_(kLanes),
      results_(kLanes), cycles_(kLanes, 0), tag_mismatches_(kLanes, 0)
{
    VEGA_CHECK(kind == ModuleKind::Alu32 || kind == ModuleKind::Fpu32 ||
                   kind == ModuleKind::Mdu32,
               "batch engine supports alu32/fpu32/mdu32 modules");
    const Netlist &nl = sim_.netlist();
    a_nets_ = nl.bus("a");
    b_nets_ = nl.bus("b");
    op_nets_ = nl.bus("op");
    r_nets_ = nl.bus("r");
    a_planes_.assign(a_nets_.size(), 0);
    b_planes_.assign(b_nets_.size(), 0);
    op_planes_.assign(op_nets_.size(), 0);
    if (kind_ == ModuleKind::Fpu32) {
        flags_nets_ = nl.bus("flags");
        valid_net_ = nl.bus("valid")[0];
        clear_net_ = nl.bus("clear")[0];
        valid_out_net_ = nl.bus("valid_out")[0];
        ack_net_ = nl.bus("ack")[0];
        dbg_net_ = nl.bus("dbg_out")[0];
    }
    if (nl.has_bus("fm_rand")) {
        has_random_input_ = true;
        rand_net_ = nl.bus("fm_rand")[0];
    }
    // reset() already zeroed every primary input — including valid and
    // clear, matching the scalar FPU backend's constructor.
}

void
BatchNetlistEngine::set_lane_bus(const std::string &bus, int lane,
                                 const BitVec &value)
{
    sim_.set_bus_lane(bus, lane, value);
}

void
BatchNetlistEngine::configure_lane_random(int lane, bool random,
                                          uint64_t seed)
{
    rngs_[size_t(lane)] = Rng(seed);
    if (random) {
        VEGA_CHECK(has_random_input_,
                   "random-fault lane needs an fm_rand input");
        random_mask_ |= uint64_t(1) << lane;
    } else {
        random_mask_ &= ~(uint64_t(1) << lane);
    }
}

void
BatchNetlistEngine::post_op(int lane, uint8_t op, uint32_t a, uint32_t b)
{
    uint64_t bit = uint64_t(1) << lane;
    participant_mask_ |= bit;
    op_mask_ |= bit;
    for (size_t i = 0; i < a_planes_.size(); ++i)
        a_planes_[i] = (a_planes_[i] & ~bit) | (uint64_t((a >> i) & 1) << lane);
    for (size_t i = 0; i < b_planes_.size(); ++i)
        b_planes_[i] = (b_planes_[i] & ~bit) | (uint64_t((b >> i) & 1) << lane);
    for (size_t i = 0; i < op_planes_.size(); ++i)
        op_planes_[i] =
            (op_planes_[i] & ~bit) | (uint64_t((op >> i) & 1) << lane);
}

void
BatchNetlistEngine::post_idle(int lane)
{
    participant_mask_ |= uint64_t(1) << lane;
}

void
BatchNetlistEngine::post_read_fflags(int lane)
{
    VEGA_CHECK(kind_ == ModuleKind::Fpu32, "fflags live in the FPU");
    uint64_t bit = uint64_t(1) << lane;
    participant_mask_ |= bit;
    read_mask_ |= bit;
}

void
BatchNetlistEngine::post_clear_fflags(int lane)
{
    VEGA_CHECK(kind_ == ModuleKind::Fpu32, "fflags live in the FPU");
    uint64_t bit = uint64_t(1) << lane;
    participant_mask_ |= bit;
    clear_mask_ |= bit;
}

void
BatchNetlistEngine::draw_rand(uint64_t lanes_mask)
{
    if (rand_net_ == kInvalidId)
        return;
    for (uint64_t m = lanes_mask & random_mask_; m; m &= m - 1) {
        int lane = lowest_lane(m);
        uint64_t bit = uint64_t(1) << lane;
        rand_plane_ = (rand_plane_ & ~bit) |
                      (uint64_t(rngs_[size_t(lane)].next() & 1) << lane);
    }
    sim_.set_input(rand_net_, rand_plane_);
}

void
BatchNetlistEngine::commit_round()
{
    // 1. Pre-tick speculative edge: ReadFflags lanes sample the sticky
    // flags register as of *now* (the scalar read_fflags() peeks before
    // the instruction's idle tick). The edge commits every lane's DFFs,
    // but the restore makes that invisible to non-reading lanes.
    if (read_mask_) {
        sim_.save_state_into(planes_save_);
        rngs_save_ = rngs_;
        draw_rand(read_mask_);
        sim_.step();
        for (uint64_t m = read_mask_; m; m &= m - 1) {
            int lane = lowest_lane(m);
            FuBackend::FuResult &res = results_[size_t(lane)];
            res = {};
            for (size_t i = 0; i < flags_nets_.size(); ++i)
                res.flags |= uint8_t(bit_of(sim_.value(flags_nets_[i]), lane)
                                     << i);
            ++cycles_[size_t(lane)];
        }
        sim_.restore_state(planes_save_);
        rngs_ = rngs_save_;
    }

    // 2. The real edge. Operand planes hold for idle lanes; valid/clear
    // pulse only in the lanes whose transaction raises them, exactly as
    // the scalar fpu()/clear_fflags()/idle() input discipline.
    for (size_t i = 0; i < a_planes_.size(); ++i)
        sim_.set_input(a_nets_[i], a_planes_[i]);
    for (size_t i = 0; i < b_planes_.size(); ++i)
        sim_.set_input(b_nets_[i], b_planes_[i]);
    for (size_t i = 0; i < op_planes_.size(); ++i)
        sim_.set_input(op_nets_[i], op_planes_[i]);
    if (kind_ == ModuleKind::Fpu32) {
        sim_.set_input(valid_net_, op_mask_);
        sim_.set_input(clear_net_, clear_mask_);
    }
    draw_rand(participant_mask_);
    sim_.step();
    if (kind_ == ModuleKind::Fpu32) {
        sim_.set_input(valid_net_, 0);
        sim_.set_input(clear_net_, 0);
    }
    for (uint64_t m = participant_mask_; m; m &= m - 1)
        ++cycles_[size_t(lowest_lane(m))];

    // 3. Post-tick speculative edge: Op lanes read their results one
    // edge ahead (the scalar peek_outputs()), without disturbing the
    // committed timeline or any lane's fm_rand stream.
    if (op_mask_) {
        sim_.save_state_into(planes_save_);
        rngs_save_ = rngs_;
        draw_rand(op_mask_);
        sim_.step();
        for (uint64_t m = op_mask_; m; m &= m - 1)
            results_[size_t(lowest_lane(m))] = {};
        for (size_t i = 0; i < r_nets_.size(); ++i) {
            uint64_t plane = sim_.value(r_nets_[i]);
            for (uint64_t m = op_mask_; m; m &= m - 1) {
                int lane = lowest_lane(m);
                results_[size_t(lane)].value |=
                    uint32_t(bit_of(plane, lane)) << i;
            }
        }
        if (kind_ == ModuleKind::Fpu32) {
            std::vector<uint64_t> flag_planes(flags_nets_.size());
            for (size_t i = 0; i < flags_nets_.size(); ++i)
                flag_planes[i] = sim_.value(flags_nets_[i]);
            uint64_t valid_plane = sim_.value(valid_out_net_);
            uint64_t ack_plane = sim_.value(ack_net_);
            uint64_t dbg_plane = sim_.value(dbg_net_);
            for (uint64_t m = op_mask_; m; m &= m - 1) {
                int lane = lowest_lane(m);
                uint64_t bit = uint64_t(1) << lane;
                FuBackend::FuResult &res = results_[size_t(lane)];
                for (size_t i = 0; i < flags_nets_.size(); ++i)
                    res.flags |= uint8_t(bit_of(flag_planes[i], lane) << i);
                res.stalled = !(bit_of(valid_plane, lane) &&
                                bit_of(ack_plane, lane));
                // dbg_out lags the tag toggle by one stage: this peek
                // shows the parity of ops issued strictly before.
                bool dbg = bit_of(dbg_plane, lane) != 0;
                bool expected = (expected_tag_mask_ & bit) != 0;
                if (dbg != expected)
                    ++tag_mismatches_[size_t(lane)];
                expected_tag_mask_ ^= bit;
            }
        }
        for (uint64_t m = op_mask_; m; m &= m - 1)
            ++cycles_[size_t(lowest_lane(m))];
        sim_.restore_state(planes_save_);
        rngs_ = rngs_save_;
    }

    participant_mask_ = op_mask_ = read_mask_ = clear_mask_ = 0;
}

} // namespace vega::cpu
