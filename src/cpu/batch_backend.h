/**
 * @file
 * 64-lane gate-level functional-unit engine for wave execution.
 *
 * The scalar NetlistBackend drives one module instance one ISS
 * instruction at a time. This engine drives 64 *independent* module
 * instances — one BatchSimulator lane each, typically over a fault-bank
 * netlist (lift::build_fault_bank) with a different fault enabled per
 * lane — through the same per-instruction protocol, one shared tape
 * pass per clock edge.
 *
 * Per round, each active lane posts exactly one transaction (an op, an
 * idle tick, an fflags read, or a flags-clear pulse) and commit_round()
 * advances every lane together:
 *
 *   1. a speculative pre-tick edge serving every ReadFflags lane (the
 *      scalar read_fflags() peeks *before* its idle tick);
 *   2. the one real edge every participant consumes, with per-lane
 *      valid/clear pulses and per-lane fm_rand streams;
 *   3. a speculative post-tick edge serving every Op lane (the scalar
 *      alu()/fpu()/mdu() peek their results one edge ahead).
 *
 * Speculative edges save/restore all planes and every lane RNG, so the
 * committed timeline — including each lane's fm_rand draw sequence and
 * cycle count — is bit-identical to 64 scalar NetlistBackends. Lanes
 * are independent by construction (bank fault muxes are exact
 * pass-throughs when disabled), so a lane's behaviour does not depend
 * on which other lanes share its wave.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "cpu/iss.h"
#include "rtl/module.h"
#include "sim/batch_sim.h"

namespace vega::cpu {

class BatchNetlistEngine
{
  public:
    static constexpr int kLanes = BatchSimulator::kLanes;

    /** @p tape: compiled fault-bank (or plain module) netlist tape. */
    BatchNetlistEngine(ModuleKind kind, std::shared_ptr<const EvalTape> tape);

    ModuleKind kind() const { return kind_; }

    /** Drive an input bus in one lane (fault-bank "fm_en" one-hots). */
    void set_lane_bus(const std::string &bus, int lane, const BitVec &value);

    /**
     * Seed lane @p lane's fm_rand stream; @p random says whether this
     * lane's enabled fault reads "fm_rand" at all (non-random lanes
     * never draw, exactly like a scalar backend without the input).
     */
    void configure_lane_random(int lane, bool random, uint64_t seed);

    /// @name Per-round transaction posting (at most one per lane)
    /// @{
    void post_op(int lane, uint8_t op, uint32_t a, uint32_t b);
    void post_idle(int lane);
    void post_read_fflags(int lane);
    void post_clear_fflags(int lane);
    /// @}

    /** True if any lane posted a transaction this round. */
    bool has_posts() const { return participant_mask_ != 0; }

    /** Advance every posted lane one protocol round (see file docs). */
    void commit_round();

    /** Lane @p lane's result from the last committed Op / ReadFflags. */
    const FuBackend::FuResult &result(int lane) const
    {
        return results_[size_t(lane)];
    }
    /** Module clock cycles lane @p lane consumed (speculative included). */
    uint64_t cycles(int lane) const { return cycles_[size_t(lane)]; }
    /** Lane-local dbg_out tag mismatches (FPU transaction protocol). */
    uint64_t tag_mismatches(int lane) const
    {
        return tag_mismatches_[size_t(lane)];
    }

  private:
    void draw_rand(uint64_t lanes_mask);
    uint64_t bit_of(uint64_t plane, int lane) const
    {
        return (plane >> lane) & 1;
    }

    ModuleKind kind_;
    BatchSimulator sim_;
    bool has_random_input_ = false;

    // Cached bus net ids (avoids per-round name lookups).
    std::vector<NetId> a_nets_, b_nets_, op_nets_;
    std::vector<NetId> r_nets_, flags_nets_;
    NetId valid_net_ = kInvalidId, clear_net_ = kInvalidId;
    NetId valid_out_net_ = kInvalidId, ack_net_ = kInvalidId;
    NetId dbg_net_ = kInvalidId, rand_net_ = kInvalidId;

    // Held input planes (idle lanes keep their previous operands, as
    // scalar backends do) and the per-round pulse masks.
    std::vector<uint64_t> a_planes_, b_planes_, op_planes_;
    uint64_t rand_plane_ = 0;
    uint64_t participant_mask_ = 0;
    uint64_t op_mask_ = 0;
    uint64_t read_mask_ = 0;
    uint64_t clear_mask_ = 0;
    uint64_t random_mask_ = 0;

    std::vector<Rng> rngs_;
    std::vector<Rng> rngs_save_;
    std::vector<uint64_t> planes_save_;

    std::vector<FuBackend::FuResult> results_;
    std::vector<uint64_t> cycles_;
    std::vector<uint64_t> tag_mismatches_;
    uint64_t expected_tag_mask_ = 0; ///< bit L = lane L's predicted parity
};

} // namespace vega::cpu
