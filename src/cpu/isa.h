/**
 * @file
 * The instruction set of Vega's evaluation CPU.
 *
 * A RV32IM+F-subset, in-order, single-issue core standing in for the
 * CV32E40P. Instructions are held in a structured form (not binary
 * encodings): the ISS executes them directly and render_asm() prints the
 * equivalent RISC-V assembly, which is what the generated aging library
 * embeds as inline asm (§3.4.1).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vega::cpu {

/** Integer register index (x0..x31, x0 hardwired to zero). */
using Reg = uint8_t;
/** FP register index (f0..f31). */
using FReg = uint8_t;

enum class Op : uint8_t {
    // RV32I register-register (routed through the ALU module).
    Add, Sub, Sll, Slt, Sltu, Xor, Srl, Sra, Or, And,
    // Register-immediate.
    Addi, Slti, Sltiu, Xori, Ori, Andi, Slli, Srli, Srai,
    Lui, Auipc,
    // RV32M (separate multiplier unit in the CV32E40P; golden-modeled).
    Mul, Mulh, Mulhu, Div, Divu, Rem, Remu,
    // Memory.
    Lw, Sw, Lb, Lbu, Sb,
    // Control.
    Beq, Bne, Blt, Bge, Bltu, Bgeu, Jal, Jalr,
    // F extension subset (routed through the FPU module).
    FaddS, FsubS, FmulS, FeqS, FltS, FleS, FminS, FmaxS,
    FmvWX, FmvXW, Flw, Fsw,
    // CSR (fflags only).
    CsrrFflags,   ///< rd = fflags
    CsrwFflags,   ///< fflags = rs1 (rs1 == x0 clears)
    // Environment.
    Halt,
};

/** One structured instruction. */
struct Instr
{
    Op op = Op::Halt;
    Reg rd = 0;
    Reg rs1 = 0;
    Reg rs2 = 0;
    int32_t imm = 0; ///< immediate or branch/jump target (instr index)
};

/** True if @p op executes on the ALU functional unit. */
bool is_alu_module_op(Op op);
/** True if @p op executes on the FPU functional unit. */
bool is_fpu_module_op(Op op);

/** RISC-V style disassembly of one instruction. */
std::string render_asm(const Instr &instr);

/** Render a whole program with instruction indices as labels. */
std::string render_asm(const std::vector<Instr> &program);

} // namespace vega::cpu
