#include "cpu/assembler.h"

#include "common/logging.h"

namespace vega::cpu {

void
Asm::label(const std::string &name)
{
    VEGA_CHECK(!labels_.count(name), "duplicate label ", name);
    labels_[name] = static_cast<int32_t>(program_.size());
}

void
Asm::li(Reg rd, uint32_t value)
{
    int32_t sv = static_cast<int32_t>(value);
    if (sv >= -2048 && sv < 2048) {
        addi(rd, 0, sv);
        return;
    }
    // lui loads the upper 20 bits; addi's sign extension needs the
    // standard +0x800 compensation.
    uint32_t hi = (value + 0x800) & 0xfffff000;
    int32_t lo = static_cast<int32_t>(value - hi);
    lui(rd, hi);
    if (lo != 0)
        addi(rd, rd, lo);
}

void
Asm::branch_to(Op op, Reg a, Reg b, const std::string &target)
{
    fixups_.emplace_back(program_.size(), target);
    emit({op, 0, a, b, 0});
}

void Asm::beq(Reg a, Reg b, const std::string &t) { branch_to(Op::Beq, a, b, t); }
void Asm::bne(Reg a, Reg b, const std::string &t) { branch_to(Op::Bne, a, b, t); }
void Asm::blt(Reg a, Reg b, const std::string &t) { branch_to(Op::Blt, a, b, t); }
void Asm::bge(Reg a, Reg b, const std::string &t) { branch_to(Op::Bge, a, b, t); }
void Asm::bltu(Reg a, Reg b, const std::string &t) { branch_to(Op::Bltu, a, b, t); }
void Asm::bgeu(Reg a, Reg b, const std::string &t) { branch_to(Op::Bgeu, a, b, t); }

void
Asm::jal(Reg rd, const std::string &target)
{
    fixups_.emplace_back(program_.size(), target);
    emit({Op::Jal, rd, 0, 0, 0});
}

std::vector<Instr>
Asm::finish()
{
    for (auto &[index, name] : fixups_) {
        auto it = labels_.find(name);
        VEGA_CHECK(it != labels_.end(), "unbound label ", name);
        program_[index].imm = it->second;
    }
    fixups_.clear();
    return program_;
}

} // namespace vega::cpu
