/**
 * @file
 * Instruction Construction (§3.3.5): lower a cycle-accurate module-level
 * cover trace into a software test case.
 *
 * This is the per-microarchitecture lookup the paper describes: each
 * trace cycle maps to the CPU instruction that drives the module's ports
 * with exactly those values (ALU ops for alu32 frames; FPU ops, fflags
 * clears, or integer nops for fpu32 frames). Expected results come from
 * the golden models; register allocation is deferred to the test-case
 * compiler (runtime/test_case.cpp), matching the paper's deferral to the
 * Test Integration phase.
 */
#pragma once

#include <string>

#include "lift/failure_model.h"
#include "runtime/test_case.h"
#include "sim/waveform.h"

namespace vega::lift {

struct ConversionResult
{
    bool ok = false;
    runtime::TestCase test;
    /** Why conversion failed (the paper's "FC" outcome). */
    std::string reason;
};

/**
 * Convert @p trace (recorded by BMC on the shadow-instrumented module)
 * into a finalized TestCase.
 */
ConversionResult build_test_case(ModuleKind kind, const Waveform &trace,
                                 int pair_index,
                                 const std::string &config_name);

/**
 * The `assume property` input restrictions for a module (§3.3.3):
 * returns nets that must be 1 every cycle. Builds constraint logic into
 * @p nl; call on the instrumented copy before BMC.
 */
std::vector<NetId> build_assumes(Netlist &nl, ModuleKind kind);

} // namespace vega::lift
