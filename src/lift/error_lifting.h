/**
 * @file
 * The Error Lifting phase (§3.3), end to end.
 *
 * For every violating endpoint pair from aging-aware STA, instrument the
 * module with a failure model and a shadow replica, run bounded model
 * checking on the cover property, lower each trace to a software test
 * case, and validate it against the corresponding failing netlist. The
 * per-pair outcomes reproduce Table 4's categories:
 *
 *   Success           ("S")  at least one validated test case
 *   Unreachable       ("UR") every configuration formally cannot err
 *   Timeout           ("FF") the formal tool ran out of budget
 *   ConversionFailed  ("FC") a trace exists but no observable software
 *                            check distinguishes the failure
 */
#pragma once

#include <string>
#include <vector>

#include "common/error.h"
#include "formal/bmc.h"
#include "lift/failure_model.h"
#include "lift/instruction_builder.h"
#include "rtl/module.h"
#include "runtime/test_case.h"
#include "sta/sta.h"

namespace vega::lift {

/** Trace-generation engine selection (§6.3). */
enum class TraceEngine {
    Formal,  ///< BMC only (the paper's baseline)
    Fuzzing, ///< random exploration only; cannot prove unreachability
    Hybrid,  ///< fuzz first (cheap), fall back to BMC for the rest
};

const char *trace_engine_name(TraceEngine engine);

struct LiftConfig
{
    formal::BmcOptions bmc;
    /** Enable the §3.3.4 edge-triggered mitigation variants. */
    bool mitigation = false;
    /** Analyze only the first N pairs (benchmarks subset with this). */
    size_t max_pairs = SIZE_MAX;
    /** How cover traces are produced. */
    TraceEngine engine = TraceEngine::Formal;
    /** Episode budget when the fuzzing engine participates. */
    size_t fuzz_episodes = 1500;

    // Retry-with-degradation ladder for the formal engine. Defaults
    // reproduce the single-attempt baseline; the campaign CLI opts in.
    // With the (default) incremental BMC engine the rungs share one
    // CoverSession: a retry resumes the timed-out bound on the same
    // solver with a bigger budget instead of re-unrolling from scratch.
    /** Formal attempts per configuration; Timeouts retry with the
     *  conflict/wall budget multiplied by formal_budget_growth. */
    int formal_attempts = 1;
    /** Budget multiplier between formal attempts. */
    double formal_budget_growth = 4.0;
    /** After the last formal attempt still times out, fall back to the
     *  fuzzer before recording a structured Exhausted outcome. */
    bool degrade_to_fuzz = false;

    /**
     * Solve all fault configurations of a pair-batch as ONE
     * formal::CoverBatch suite against a multi-cone shadow bank (the
     * default): the shared module logic is unrolled once per frame for
     * the whole batch instead of once per configuration, and each
     * escalation rung re-runs only the still-starved targets. Per-config
     * statuses, frames, and traces are byte-identical to looping
     * check_cover per configuration (batch_cover = false), which stays
     * available as the semantics oracle.
     */
    bool batch_cover = true;
    /** Endpoint pairs per CoverBatch suite when batch_cover is set. */
    size_t batch_pairs = 8;
};

enum class PairStatus { Success, Unreachable, Timeout, ConversionFailed };

const char *pair_status_name(PairStatus s);

/** Result of one failure-model configuration (one C / edge choice). */
struct ConfigOutcome
{
    FailureModelSpec spec;
    std::string name;
    /** True when the fuzzing engine produced the trace. */
    bool fuzzed = false;
    formal::BmcStatus bmc = formal::BmcStatus::Timeout;
    bool proven_by_induction = false;
    int frames = 0;
    uint64_t conflicts = 0;
    bool converted = false;
    bool validated = false;
    std::string failure_reason;

    // Retry-with-degradation bookkeeping.
    /** Formal attempts spent (1 = no retry; 0 = formal never ran). */
    int attempts = 1;
    /** Trace came from the Timeout-triggered fuzz fallback. */
    bool degraded_to_fuzz = false;
    /** Whole ladder (retries, then fallback if enabled) came up empty. */
    bool exhausted = false;
    /** Set when exhausted: code Exhausted with the ladder's history. */
    VegaError error;
};

struct PairResult
{
    sta::EndpointPair pair;
    PairStatus status = PairStatus::Timeout;
    std::vector<ConfigOutcome> configs;
    /** Validated test cases (may be empty). */
    std::vector<runtime::TestCase> tests;
};

struct LiftResult
{
    std::vector<PairResult> pairs;
    size_t n_success = 0;
    size_t n_unreachable = 0;
    size_t n_timeout = 0;
    size_t n_conversion_failed = 0;

    /** All validated tests, suite order (Table 5's test cases). */
    std::vector<runtime::TestCase> suite() const;
    /** Total executed cycles of one suite pass (Table 5's cycles). */
    uint64_t suite_cycles() const;
};

/** Run Error Lifting over @p pairs of @p module. */
LiftResult run_error_lifting(const HwModule &module,
                             const std::vector<sta::EndpointPair> &pairs,
                             const LiftConfig &config);

/**
 * Replay a test's module-level stimulus on a (failing) netlist from
 * reset and report whether any software-observable output deviates from
 * the golden expectations. Used both for FC validation during lifting
 * and for the Table 6/7 quality evaluation.
 */
runtime::Detection replay_on_module(const runtime::TestCase &tc,
                                    const Netlist &netlist,
                                    bool has_random_input = false,
                                    uint64_t seed = 1);

} // namespace vega::lift
