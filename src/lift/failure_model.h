/**
 * @file
 * Logical failure models for timing violations (§3.3.1–§3.3.2).
 *
 * A setup violation on path X ⇝ Y makes Y sample a wrong constant C
 * whenever X changed in the previous cycle (Eq. 2); a hold violation
 * does so whenever X is about to change (Eq. 3); a path that starts and
 * ends at the same flop leaves Y metastable (always C). The §3.3.4
 * mitigation narrows activation to a specific edge of X so generated
 * tests do not depend on pre-existing register state.
 *
 * The model is built from ordinary cells (a history DFF, an activation
 * comparator, and a MUX in front of Y's D pin), so the same construction
 * serves both products of this phase:
 *
 *  - a *failing netlist*: the fault spliced directly into a copy of the
 *    module, used for fault-injection evaluation (§5.2.2) and exportable
 *    as synthesizable Verilog;
 *  - a *shadow replica*: the fault feeding a duplicated fanout cone of Y
 *    whose outputs are compared against the originals, producing the
 *    cover target for trace generation (§3.3.3).
 */
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "netlist/netlist.h"
#include "sta/sta.h"

namespace vega::lift {

/** The wrong value C sampled on a violation. */
enum class FaultConstant {
    Zero,
    One,
    /**
     * A fresh value each cycle, driven by the evaluation testbench
     * through an added "fm_rand" input (Table 6's "R" failure mode).
     * Not used for formal trace generation, matching the paper.
     */
    RandomInput,
};

/** §3.3.4 activation narrowing. */
enum class Mitigation { None, RisingEdge, FallingEdge };

const char *fault_constant_name(FaultConstant c);
const char *mitigation_name(Mitigation m);

/** Which violation to model on which endpoint pair. */
struct FailureModelSpec
{
    CellId launch = kInvalidId;  ///< X: launching DFF
    CellId capture = kInvalidId; ///< Y: capturing DFF
    bool is_setup = true;
    FaultConstant constant = FaultConstant::Zero;
    Mitigation mitigation = Mitigation::None;
};

/** A module copy with the fault spliced in front of Y. */
struct FailingNetlist
{
    Netlist netlist;
    /** True if the "fm_rand" input bus exists (RandomInput mode). */
    bool has_random_input = false;
};

FailingNetlist build_failing_netlist(const Netlist &nl,
                                     const FailureModelSpec &spec);

/**
 * A module copy with *every* fault of a working set spliced in at once,
 * each gated by its own bit of an added "fm_en" input bus. With exactly
 * one enable raised, the netlist behaves — gate-for-gate on every
 * original net — like build_failing_netlist() of that spec alone: a
 * disabled fault's MUX is an exact pass-through, so the chained splices
 * on a shared capture flop compose to the identity. One compiled
 * EvalTape of the bank therefore serves a whole campaign's fault matrix,
 * which is what lets BatchSimulator lanes run 64 different faults per
 * pass (campaign wave execution).
 */
struct FaultBank
{
    Netlist netlist;
    /** Faults in input order; enable bit i of "fm_en" activates spec i. */
    size_t num_faults = 0;
    /** True if any spec is RandomInput (one shared "fm_rand" input). */
    bool has_random_input = false;
    /** Per fault: does it read "fm_rand"? */
    std::vector<char> fault_random;
};

FaultBank build_fault_bank(const Netlist &nl,
                           const std::vector<FailureModelSpec> &specs);

/** A module copy with fault + shadow replica + cover target. */
struct ShadowInstrumentation
{
    Netlist netlist;
    /** 1-bit cover target: some shadowed output differs (Figure 7). */
    NetId mismatch = kInvalidId;
    /** (original Q, shadow Q) pairs for the inductive check. */
    std::vector<std::pair<NetId, NetId>> state_pairs;
    /** Output buses that have shadow copies, e.g. "o" -> "o_s". */
    std::vector<std::string> shadowed_buses;
};

ShadowInstrumentation
build_shadow_instrumentation(const Netlist &nl, const FailureModelSpec &spec);

/**
 * One module copy carrying an independent shadow replica per spec —
 * the suite-level netlist behind batched cover solving. Unlike
 * build_fault_bank there are NO enable inputs: every spec's fault
 * logic and duplicated fanout cone (nets suffixed "_s<i>") is always
 * live, each feeding its own mismatch bit, and the original module
 * logic is shared untouched. Cone i is gate-for-gate isomorphic to
 * build_shadow_instrumentation(nl, specs[i]) — same fault structure,
 * same observability gating, same state pairs — so target i's
 * bound-k satisfiability equals the single-spec instrumentation's,
 * which is what lets formal::CoverBatch solve a whole pair-batch on
 * one unrolled instance and re-derive witnesses per spec.
 */
struct ShadowBank
{
    Netlist netlist;
    struct Cone
    {
        /** Cover target of this spec (bit i of the "mismatch" bus). */
        NetId mismatch = kInvalidId;
        /** (original Q, shadow Q) pairs for this spec's inductive check. */
        std::vector<std::pair<NetId, NetId>> state_pairs;
    };
    /** One entry per spec, input order. */
    std::vector<Cone> cones;
};

ShadowBank build_shadow_bank(const Netlist &nl,
                             const std::vector<FailureModelSpec> &specs);

} // namespace vega::lift
