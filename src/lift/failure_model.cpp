#include "lift/failure_model.h"

#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "netlist/builder.h"

namespace vega::lift {

const char *
fault_constant_name(FaultConstant c)
{
    switch (c) {
      case FaultConstant::Zero:        return "C=0";
      case FaultConstant::One:         return "C=1";
      case FaultConstant::RandomInput: return "C=rand";
    }
    return "?";
}

const char *
mitigation_name(Mitigation m)
{
    switch (m) {
      case Mitigation::None:        return "none";
      case Mitigation::RisingEdge:  return "rise";
      case Mitigation::FallingEdge: return "fall";
    }
    return "?";
}

namespace {

/** The fault-model nets shared by both instrumentation modes. */
struct FaultNets
{
    NetId faulty_d;    ///< replacement for Y's D pin
    NetId active;      ///< 1 when the violation corrupts this cycle
};

/**
 * Build the Eq. 2 / Eq. 3 structure into @p nl (a fresh copy of the
 * module): history flop, activation comparator, C source, and the MUX
 * producing Y's corrupted next-state.
 */
FaultNets
build_fault_logic(Netlist &nl, const FailureModelSpec &spec)
{
    Builder b(nl, "vegafm");
    // Copy by value: adding cells below reallocates the cell vector.
    const Cell x = nl.cell(spec.launch);
    const Cell y = nl.cell(spec.capture);
    VEGA_CHECK(x.type == CellType::Dff && y.type == CellType::Dff,
               "failure model endpoints must be DFFs");

    NetId y_orig_d = y.in[0];

    // C source.
    NetId c_net = kInvalidId;
    switch (spec.constant) {
      case FaultConstant::Zero:
        c_net = b.const0();
        break;
      case FaultConstant::One:
        c_net = b.const1();
        break;
      case FaultConstant::RandomInput:
        c_net = nl.add_input_bus("fm_rand", 1)[0];
        break;
    }

    // Activation condition.
    NetId x_now = x.out;
    NetId x_other; // X(t-1) for setup, X(t+1) for hold
    if (spec.launch == spec.capture) {
        // Same-flop path: Y is metastable and always samples C (§3.3.1).
        NetId one = b.const1();
        NetId active = one;
        NetId faulty = b.mux(y_orig_d, c_net, active);
        nl.cell_mut(spec.capture).in[0] = faulty;
        return {faulty, active};
    }
    if (spec.is_setup) {
        // History flop retains X(t-1); cell $12 in Figure 5.
        x_other = b.dff(x_now, x.init, x.clock_leaf);
    } else {
        // X's own D pin is X(t+1); Figure 6.
        x_other = x.in[0];
    }

    NetId active;
    switch (spec.mitigation) {
      case Mitigation::None:
        active = b.xor_(x_now, x_other);
        break;
      case Mitigation::RisingEdge:
        // Setup: rising edge means X(t-1)=0, X(t)=1. Hold: X(t)=0 and
        // X(t+1)=1. Either way: "now" side low for hold, high for setup.
        active = spec.is_setup ? b.and_(x_now, b.not_(x_other))
                               : b.and_(b.not_(x_now), x_other);
        break;
      case Mitigation::FallingEdge:
        active = spec.is_setup ? b.and_(b.not_(x_now), x_other)
                               : b.and_(x_now, b.not_(x_other));
        break;
      default:
        panic("bad mitigation");
    }

    NetId faulty = b.mux(y_orig_d, c_net, active);
    return {faulty, active};
}

} // namespace

FailingNetlist
build_failing_netlist(const Netlist &nl, const FailureModelSpec &spec)
{
    FailingNetlist out;
    out.netlist = nl; // deep copy
    out.netlist.set_name(nl.name() + "_failing");
    FaultNets fm = build_fault_logic(out.netlist, spec);
    if (spec.launch != spec.capture)
        out.netlist.cell_mut(spec.capture).in[0] = fm.faulty_d;
    out.has_random_input = spec.constant == FaultConstant::RandomInput;
    out.netlist.validate();
    return out;
}

FaultBank
build_fault_bank(const Netlist &nl,
                 const std::vector<FailureModelSpec> &specs)
{
    VEGA_CHECK(!specs.empty(), "fault bank needs at least one spec");
    FaultBank out;
    out.netlist = nl; // deep copy
    out.netlist.set_name(nl.name() + "_bank");
    out.num_faults = specs.size();
    out.fault_random.resize(specs.size(), 0);
    Netlist &bnl = out.netlist;

    // Activation logic must read each launch flop's *original* D net:
    // once an earlier fault splices a MUX chain in front of a shared
    // capture flop, cell().in[0] points at the chain, not the module's
    // own next-state function. With one-hot enables the chain is an
    // exact pass-through, so the original net carries the same value —
    // reading it keeps every fault's activation cone identical to its
    // standalone build_failing_netlist() form.
    std::unordered_map<CellId, NetId> orig_d;
    for (const FailureModelSpec &spec : specs) {
        const Cell &x = bnl.cell(spec.launch);
        const Cell &y = bnl.cell(spec.capture);
        VEGA_CHECK(x.type == CellType::Dff && y.type == CellType::Dff,
                   "failure model endpoints must be DFFs");
        orig_d.emplace(spec.launch, x.in[0]);
        orig_d.emplace(spec.capture, y.in[0]);
    }

    Builder b(bnl, "vegafm");
    std::vector<NetId> enables = bnl.add_input_bus("fm_en", specs.size());
    NetId rand_net = kInvalidId;
    for (const FailureModelSpec &spec : specs) {
        if (spec.constant == FaultConstant::RandomInput) {
            rand_net = bnl.add_input_bus("fm_rand", 1)[0];
            out.has_random_input = true;
            break;
        }
    }

    for (size_t i = 0; i < specs.size(); ++i) {
        const FailureModelSpec &spec = specs[i];
        // Copy by value: adding cells below reallocates the cell vector.
        const Cell x = bnl.cell(spec.launch);

        NetId c_net = kInvalidId;
        switch (spec.constant) {
          case FaultConstant::Zero:
            c_net = b.const0();
            break;
          case FaultConstant::One:
            c_net = b.const1();
            break;
          case FaultConstant::RandomInput:
            c_net = rand_net;
            out.fault_random[i] = 1;
            break;
        }

        NetId gated;
        if (spec.launch == spec.capture) {
            // Same-flop path: standalone activation is constant 1, so
            // the gated form is the enable itself.
            gated = enables[i];
        } else {
            NetId x_now = x.out;
            NetId x_other = spec.is_setup
                                ? b.dff(x_now, x.init, x.clock_leaf)
                                : orig_d.at(spec.launch);
            NetId active;
            switch (spec.mitigation) {
              case Mitigation::None:
                active = b.xor_(x_now, x_other);
                break;
              case Mitigation::RisingEdge:
                active = spec.is_setup ? b.and_(x_now, b.not_(x_other))
                                       : b.and_(b.not_(x_now), x_other);
                break;
              case Mitigation::FallingEdge:
                active = spec.is_setup ? b.and_(b.not_(x_now), x_other)
                                       : b.and_(x_now, b.not_(x_other));
                break;
              default:
                panic("bad mitigation");
            }
            gated = b.and_(active, enables[i]);
        }

        // Chain onto whatever currently drives Y's D — the original
        // next-state net, or an earlier fault's (pass-through when
        // disabled) MUX.
        NetId cur_d = bnl.cell(spec.capture).in[0];
        NetId faulty = b.mux(cur_d, c_net, gated);
        bnl.cell_mut(spec.capture).in[0] = faulty;
    }

    bnl.validate();
    return out;
}

namespace {

/** The per-spec product of one shadow-replica construction. */
struct ShadowCone
{
    NetId mismatch = kInvalidId;
    std::vector<std::pair<NetId, NetId>> state_pairs;
    std::vector<std::string> shadowed_buses;
};

/**
 * Core of both shadow builders: splice spec's fault model into @p snl
 * (already a copy of @p nl, possibly carrying earlier cones), duplicate
 * Y's fanout cone under @p suffix, and build the observability-gated
 * mismatch bit. @p add_shadow_buses registers the "<bus><suffix>"
 * output buses (the single-spec instrumentation publishes them per
 * Table 2; the bank keeps only the mismatch bits as outputs).
 */
ShadowCone
build_shadow_cone(Netlist &snl, const Netlist &nl,
                  const FailureModelSpec &spec, const std::string &suffix,
                  bool add_shadow_buses)
{
    VEGA_CHECK(spec.constant != FaultConstant::RandomInput,
               "formal trace generation uses constant C only");

    ShadowCone out;
    FaultNets fm = build_fault_logic(snl, spec);

    // Cells influenced by Y, including Y itself (§3.3.2).
    std::vector<CellId> cone = nl.fanout_cone(spec.capture);
    std::unordered_set<CellId> in_cone(cone.begin(), cone.end());

    // Shadow output net per cone cell, created up front so shadow cells
    // can be wired in any order.
    std::unordered_map<NetId, NetId> shadow_net; // orig out -> shadow out
    for (CellId c : cone) {
        NetId orig = snl.cell(c).out;
        shadow_net[orig] = snl.new_net(nl.net(orig).name + suffix);
    }

    for (CellId c : cone) {
        const Cell orig = snl.cell(c); // copy: adding cells reallocates
        std::vector<NetId> ins;
        for (int i = 0; i < orig.num_inputs(); ++i) {
            NetId in = orig.in[i];
            auto it = shadow_net.find(in);
            ins.push_back(it == shadow_net.end() ? in : it->second);
        }
        if (c == spec.capture && spec.launch != spec.capture) {
            // The shadow Y samples the corrupted D (Figure 7's $10S).
            ins[0] = fm.faulty_d;
        }
        if (orig.type == CellType::Dff) {
            CellId s = snl.add_dff(orig.name + suffix, ins[0],
                                   shadow_net.at(orig.out), orig.init,
                                   orig.clock_leaf);
            (void)s;
            out.state_pairs.emplace_back(orig.out,
                                         shadow_net.at(orig.out));
        } else {
            snl.add_cell(orig.type, orig.name + suffix, ins,
                         shadow_net.at(orig.out));
        }
    }

    // In the failing-netlist mode the fault replaces Y's D directly; in
    // shadow mode Y keeps its original D, and only the replica sees the
    // corruption — revert any splice done for the same-flop case.
    if (spec.launch == spec.capture) {
        // build_fault_logic spliced Y; restore the original D and hand
        // the corrupted input to the shadow copy only.
        // (For distinct endpoints build_fault_logic does not splice.)
        // The shadow copy above read orig.in after the splice, so it is
        // already corrupted; restore the original wiring for Y itself.
        // Find Y's original D: the MUX we inserted has it as input A.
        const Cell &y = snl.cell(spec.capture);
        const Cell &mux = snl.cell(snl.net(y.in[0]).driver);
        VEGA_CHECK(mux.type == CellType::Mux2, "fault mux expected");
        snl.cell_mut(spec.capture).in[0] = mux.in[0];
    }

    // Cover target: OR over shadowed primary-output bits of
    // (orig != shadow); also publish "<bus>_s" shadow buses (Table 2).
    //
    // Observability gating (§3.3.3 microarchitectural knowledge): when
    // the module has a result-valid handshake, a result-bus mismatch
    // only matters on cycles where the handshake presents the result —
    // software never reads "r" otherwise. Mismatches on the handshake
    // and flag buses themselves stay ungated.
    Builder b(snl, "vegacov");
    NetId r_observable = kInvalidId;
    if (nl.has_bus("valid_out"))
        r_observable = nl.bus("valid_out")[0];

    std::vector<NetId> diffs;
    for (const auto &bus_name : nl.output_bus_names()) {
        const auto &nets = nl.bus(bus_name);
        bool gate_bus = bus_name == "r" && r_observable != kInvalidId;
        bool any_shadowed = false;
        std::vector<NetId> shadow_bus;
        for (NetId n : nets) {
            auto it = shadow_net.find(n);
            if (it != shadow_net.end()) {
                any_shadowed = true;
                shadow_bus.push_back(it->second);
                NetId diff = b.xor_(n, it->second);
                if (gate_bus)
                    diff = b.and_(diff, r_observable);
                diffs.push_back(diff);
            } else {
                shadow_bus.push_back(n);
            }
        }
        if (any_shadowed) {
            if (add_shadow_buses)
                snl.add_output_bus(bus_name + suffix, shadow_bus);
            out.shadowed_buses.push_back(bus_name);
        }
    }
    VEGA_CHECK(!diffs.empty(),
               "shadow cone of ", nl.cell(spec.capture).name,
               " reaches no primary output");
    out.mismatch = b.or_n(diffs);
    return out;
}

} // namespace

ShadowInstrumentation
build_shadow_instrumentation(const Netlist &nl, const FailureModelSpec &spec)
{
    ShadowInstrumentation out;
    out.netlist = nl; // deep copy
    Netlist &snl = out.netlist;
    snl.set_name(nl.name() + "_shadow");

    ShadowCone cone = build_shadow_cone(snl, nl, spec, "_s",
                                        /*add_shadow_buses=*/true);
    out.mismatch = cone.mismatch;
    out.state_pairs = std::move(cone.state_pairs);
    out.shadowed_buses = std::move(cone.shadowed_buses);
    snl.add_output_bus("mismatch", {out.mismatch});

    snl.validate();
    return out;
}

ShadowBank
build_shadow_bank(const Netlist &nl,
                  const std::vector<FailureModelSpec> &specs)
{
    VEGA_CHECK(!specs.empty(), "shadow bank needs at least one spec");
    ShadowBank out;
    out.netlist = nl; // deep copy
    Netlist &bnl = out.netlist;
    bnl.set_name(nl.name() + "_shadowbank");

    // Cones are built strictly one after another; build_shadow_cone
    // restores every original net it touches (the same-flop splice is
    // reverted after the replica samples it), so cone i+1 reads the
    // pristine module and the cones stay mutually independent.
    std::vector<NetId> mismatches;
    mismatches.reserve(specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
        ShadowCone cone =
            build_shadow_cone(bnl, nl, specs[i],
                              "_s" + std::to_string(i),
                              /*add_shadow_buses=*/false);
        mismatches.push_back(cone.mismatch);
        out.cones.push_back({cone.mismatch, std::move(cone.state_pairs)});
    }
    bnl.add_output_bus("mismatch", mismatches);

    bnl.validate();
    return out;
}

} // namespace vega::lift
