#include "lift/fuzz_lifting.h"

#include "common/rng.h"
#include "sim/simulator.h"

namespace vega::lift {

namespace {

uint32_t
random_operand(Rng &rng, double special_bias)
{
    if (rng.chance(special_bias)) {
        static const uint32_t kSpecials[] = {
            0x00000000, 0x80000000, 0x3f800000, 0xbf800000, 0x7f800000,
            0xff800000, 0x7fc00000, 0x7f800001, 0xffffffff, 0x00000001,
            0x7f7fffff, 0x00800000,
        };
        return kSpecials[rng.below(sizeof(kSpecials) /
                                   sizeof(kSpecials[0]))];
    }
    return uint32_t(rng.next());
}

} // namespace

FuzzResult
fuzz_cover(const ShadowInstrumentation &shadow, ModuleKind kind,
           const FuzzConfig &config)
{
    const Netlist &nl = shadow.netlist;
    Simulator sim(nl);
    Rng rng(config.seed);
    FuzzResult result;

    bool is_fpu = kind == ModuleKind::Fpu32;
    for (size_t episode = 0; episode < config.max_episodes; ++episode) {
        sim.reset();
        Waveform w;
        for (int t = 0; t < config.episode_len; ++t) {
            uint32_t a = random_operand(rng, config.special_bias);
            uint32_t b = random_operand(rng, config.special_bias);
            uint32_t op = is_fpu ? uint32_t(rng.below(8))
                                 : uint32_t(rng.below(10));
            sim.set_bus("a", BitVec(32, a));
            sim.set_bus("b", BitVec(32, b));
            sim.set_bus("op", BitVec(is_fpu ? 3 : 4, op));
            if (is_fpu) {
                // Same restrictions as the formal path: no mid-trace
                // clears; mostly-valid issue.
                sim.set_bus("valid", BitVec(1, rng.chance(0.85) ? 1 : 0));
                sim.set_bus("clear", BitVec(1, 0));
            }
            // Record exactly what BMC records: every port bus.
            for (const auto &bus : nl.input_bus_names())
                w.record(bus, sim.bus_value(bus));
            for (const auto &bus : nl.output_bus_names())
                w.record(bus, sim.bus_value(bus));
            ++result.cycles;
            bool hit = sim.value(shadow.mismatch);
            if (hit) {
                result.found = true;
                result.trace = std::move(w);
                result.episodes = episode + 1;
                return result;
            }
            sim.step();
        }
    }
    result.episodes = config.max_episodes;
    return result;
}

} // namespace vega::lift
