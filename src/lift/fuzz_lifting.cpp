#include "lift/fuzz_lifting.h"

#include <bit>

#include "common/rng.h"
#include "sim/batch_sim.h"

namespace vega::lift {

namespace {

uint32_t
random_operand(Rng &rng, double special_bias)
{
    if (rng.chance(special_bias)) {
        static const uint32_t kSpecials[] = {
            0x00000000, 0x80000000, 0x3f800000, 0xbf800000, 0x7f800000,
            0xff800000, 0x7fc00000, 0x7f800001, 0xffffffff, 0x00000001,
            0x7f7fffff, 0x00800000,
        };
        return kSpecials[rng.below(sizeof(kSpecials) /
                                   sizeof(kSpecials[0]))];
    }
    return uint32_t(rng.next());
}

} // namespace

FuzzResult
fuzz_cover(const ShadowInstrumentation &shadow, ModuleKind kind,
           const FuzzConfig &config)
{
    const Netlist &nl = shadow.netlist;
    BatchSimulator sim(nl);
    Rng rng(config.seed);
    FuzzResult result;
    constexpr int kLanes = BatchSimulator::kLanes;

    // Record exactly what BMC records: every port bus, inputs first.
    std::vector<std::string> buses;
    for (const auto &bus : nl.input_bus_names())
        buses.push_back(bus);
    for (const auto &bus : nl.output_bus_names())
        buses.push_back(bus);

    bool is_fpu = kind == ModuleKind::Fpu32;
    size_t batches = (config.max_episodes + kLanes - 1) / kLanes;
    for (size_t batch = 0; batch < batches; ++batch) {
        sim.reset();
        // Per-cycle, per-bus lane planes, kept so the covering lane's
        // waveform can be extracted once the mismatch plane fires.
        std::vector<std::vector<std::vector<uint64_t>>> recorded;
        for (int t = 0; t < config.episode_len; ++t) {
            for (int lane = 0; lane < kLanes; ++lane) {
                uint32_t a = random_operand(rng, config.special_bias);
                uint32_t b = random_operand(rng, config.special_bias);
                uint32_t op = is_fpu ? uint32_t(rng.below(8))
                                     : uint32_t(rng.below(10));
                sim.set_bus_lane("a", lane, BitVec(32, a));
                sim.set_bus_lane("b", lane, BitVec(32, b));
                sim.set_bus_lane("op", lane, BitVec(is_fpu ? 3 : 4, op));
                if (is_fpu) {
                    // Same restrictions as the formal path: no
                    // mid-trace clears; mostly-valid issue.
                    sim.set_bus_lane("valid", lane,
                                     BitVec(1, rng.chance(0.85) ? 1 : 0));
                }
            }
            if (is_fpu)
                sim.set_bus_all("clear", BitVec(1, 0));
            recorded.emplace_back();
            recorded.back().reserve(buses.size());
            for (const std::string &bus : buses)
                recorded.back().push_back(sim.bus_planes(bus));
            result.cycles += kLanes;
            uint64_t hits = sim.value(shadow.mismatch);
            if (hits) {
                int lane = std::countr_zero(hits);
                Waveform w;
                for (int tc = 0; tc <= t; ++tc) {
                    for (size_t bi = 0; bi < buses.size(); ++bi) {
                        const std::vector<uint64_t> &planes =
                            recorded[tc][bi];
                        BitVec v(planes.size());
                        for (size_t i = 0; i < planes.size(); ++i)
                            v.set(i, (planes[i] >> lane) & 1);
                        w.record(buses[bi], v);
                    }
                }
                result.found = true;
                result.trace = std::move(w);
                result.episodes = batch * kLanes + size_t(lane) + 1;
                return result;
            }
            sim.step();
        }
    }
    result.episodes = config.max_episodes;
    return result;
}

} // namespace vega::lift
