#include "lift/instruction_builder.h"

#include "common/logging.h"
#include "cpu/alu_ops.h"
#include "cpu/mdu_ops.h"
#include "cpu/softfp.h"
#include "netlist/builder.h"

namespace vega::lift {

namespace {

ConversionResult
convert_alu(const Waveform &trace, int pair_index,
            const std::string &config_name)
{
    ConversionResult out;
    runtime::TestCase tc;
    tc.module = ModuleKind::Alu32;
    tc.pair_index = pair_index;
    tc.config = config_name;
    tc.name = "alu_pair" + std::to_string(pair_index) + "_" + config_name;

    size_t frames = trace.num_cycles();
    if (frames > 8) {
        out.reason = "trace longer than the register budget allows";
        return out;
    }
    for (size_t f = 0; f < frames; ++f) {
        runtime::ModuleStep step;
        step.a = uint32_t(trace.at("a", f).to_u64());
        step.b = uint32_t(trace.at("b", f).to_u64());
        step.op = uint32_t(trace.at("op", f).to_u64());
        if (step.op >= uint32_t(kNumAluOps)) {
            out.reason = "trace uses an undefined opcode";
            return out;
        }
        tc.stimulus.push_back(step);
        runtime::ResultCheck check;
        check.step = f;
        check.expected = alu_compute(AluOp(step.op), step.a, step.b);
        tc.checks.push_back(check);
    }

    runtime::finalize_test_case(tc);
    out.ok = true;
    out.test = std::move(tc);
    return out;
}

ConversionResult
convert_fpu(const Waveform &trace, int pair_index,
            const std::string &config_name)
{
    ConversionResult out;
    runtime::TestCase tc;
    tc.module = ModuleKind::Fpu32;
    tc.pair_index = pair_index;
    tc.config = config_name;
    tc.name = "fpu_pair" + std::to_string(pair_index) + "_" + config_name;

    size_t frames = trace.num_cycles();
    if (frames > 8) {
        out.reason = "trace longer than the register budget allows";
        return out;
    }

    uint8_t flags_acc = 0;
    for (size_t f = 0; f < frames; ++f) {
        runtime::ModuleStep step;
        step.a = uint32_t(trace.at("a", f).to_u64());
        step.b = uint32_t(trace.at("b", f).to_u64());
        step.op = uint32_t(trace.at("op", f).to_u64());
        step.valid = trace.at("valid", f).to_u64() != 0;
        step.clear = trace.at("clear", f).to_u64() != 0;
        tc.stimulus.push_back(step);

        if (step.clear) {
            flags_acc = 0;
            continue;
        }
        if (!step.valid)
            continue;
        auto op = fp::FpuOp(step.op);
        fp::FpResult golden = fp::fpu_compute(op, step.a, step.b);
        flags_acc |= golden.flags;

        runtime::ResultCheck check;
        check.step = f;
        check.expected = golden.bits;
        check.to_xreg = op == fp::FpuOp::Eq || op == fp::FpuOp::Lt ||
                        op == fp::FpuOp::Le;
        tc.checks.push_back(check);
    }
    tc.check_final_flags = true;
    tc.expected_flags = flags_acc;

    runtime::finalize_test_case(tc);
    out.ok = true;
    out.test = std::move(tc);
    return out;
}

ConversionResult
convert_mdu(const Waveform &trace, int pair_index,
            const std::string &config_name)
{
    ConversionResult out;
    runtime::TestCase tc;
    tc.module = ModuleKind::Mdu32;
    tc.pair_index = pair_index;
    tc.config = config_name;
    tc.name = "mdu_pair" + std::to_string(pair_index) + "_" + config_name;

    size_t frames = trace.num_cycles();
    if (frames > 8) {
        out.reason = "trace longer than the register budget allows";
        return out;
    }
    for (size_t f = 0; f < frames; ++f) {
        runtime::ModuleStep step;
        step.a = uint32_t(trace.at("a", f).to_u64());
        step.b = uint32_t(trace.at("b", f).to_u64());
        step.op = uint32_t(trace.at("op", f).to_u64());
        if (step.op >= uint32_t(kNumMduOps)) {
            out.reason = "trace uses an undefined opcode";
            return out;
        }
        tc.stimulus.push_back(step);
        runtime::ResultCheck check;
        check.step = f;
        check.expected = mdu_compute(MduOp(step.op), step.a, step.b);
        tc.checks.push_back(check);
    }

    runtime::finalize_test_case(tc);
    out.ok = true;
    out.test = std::move(tc);
    return out;
}

} // namespace

ConversionResult
build_test_case(ModuleKind kind, const Waveform &trace, int pair_index,
                const std::string &config_name)
{
    switch (kind) {
      case ModuleKind::Alu32:
        return convert_alu(trace, pair_index, config_name);
      case ModuleKind::Fpu32:
        return convert_fpu(trace, pair_index, config_name);
      case ModuleKind::Mdu32:
        return convert_mdu(trace, pair_index, config_name);
      default: {
        ConversionResult out;
        out.reason = "no instruction mapping for this module";
        return out;
      }
    }
}

std::vector<NetId>
build_assumes(Netlist &nl, ModuleKind kind)
{
    Builder b(nl, "vegaassume");
    switch (kind) {
      case ModuleKind::Alu32: {
        // Only opcodes 0..9 correspond to instructions: op[3] implies
        // op[2:1] == 0 (allowing 8 = OR and 9 = AND).
        const auto &op = nl.bus("op");
        NetId bad = b.and_(op[3], b.or_(op[2], op[1]));
        return {b.not_(bad)};
      }
      case ModuleKind::Mdu32: {
        // Opcode 3 has no instruction: op[1] implies op[0] == 0.
        const auto &op = nl.bus("op");
        return {b.not_(b.and_(op[1], op[0]))};
      }
      case ModuleKind::Fpu32: {
        // Generated test blocks clear fflags once, *before* the trace
        // ops, and never mid-test: a clear pulse inside the trace would
        // wipe a corrupted sticky flag before software could read it,
        // making the trace unobservable (the paper's §3.3.3 input
        // restrictions encode exactly this kind of microarchitectural
        // knowledge).
        NetId c = nl.bus("clear")[0];
        return {b.not_(c)};
      }
      default:
        return {};
    }
}

} // namespace vega::lift
