/**
 * @file
 * Fuzzing-based trace generation — the paper's §6.3 future-work
 * direction ("fast exploration of useful test cases via random and
 * fuzzing-based methods") implemented as an alternative engine for
 * Error Lifting's trace-generation step.
 *
 * Instead of model checking, the shadow-instrumented netlist is
 * simulated from reset under random (but microarchitecturally valid)
 * stimulus; an episode that raises the cover target yields the same
 * kind of Waveform the BMC path produces, and flows through the same
 * instruction construction. Fuzzing cannot prove unreachability — the
 * key limitation the paper's §3.3 argues formal methods remove — which
 * the `ablation_fuzz_vs_formal` bench quantifies.
 *
 * Episodes run 64 at a time on the bit-parallel BatchSimulator (one
 * independent episode per lane); when the mismatch plane fires, the
 * first covering lane's stimulus/response history is extracted into
 * the Waveform. The episode budget is consumed in whole batches, so a
 * hit may be attributed to any lane of the final batch.
 */
#pragma once

#include <cstdint>

#include "lift/failure_model.h"
#include "rtl/module.h"
#include "sim/waveform.h"

namespace vega::lift {

struct FuzzConfig
{
    /** Give up after this many simulated episodes. */
    size_t max_episodes = 4000;
    /** Cycles per episode (kept short so traces stay convertible). */
    int episode_len = 5;
    uint64_t seed = 1;
    /** Bias toward special operand values (0, ±inf, NaN, all-ones). */
    double special_bias = 0.3;
};

struct FuzzResult
{
    bool found = false;
    /** Input/output waveform of the covering episode (like BMC). */
    Waveform trace;
    /** Episodes simulated before the hit (== max_episodes if none). */
    size_t episodes = 0;
    /** Total simulated lane-cycles across all episodes. */
    uint64_t cycles = 0;
};

/**
 * Fuzz the cover target of a shadow instrumentation of @p kind.
 * The stimulus respects the same input restrictions the formal path
 * assumes (valid opcodes; no mid-trace fflags clears).
 */
FuzzResult fuzz_cover(const ShadowInstrumentation &shadow, ModuleKind kind,
                      const FuzzConfig &config = {});

} // namespace vega::lift
