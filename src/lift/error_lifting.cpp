#include "lift/error_lifting.h"

#include "common/logging.h"
#include "common/rng.h"
#include "formal/cover_batch.h"
#include "lift/fuzz_lifting.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace vega::lift {

const char *
trace_engine_name(TraceEngine engine)
{
    switch (engine) {
      case TraceEngine::Formal:  return "formal";
      case TraceEngine::Fuzzing: return "fuzzing";
      case TraceEngine::Hybrid:  return "hybrid";
    }
    return "?";
}

const char *
pair_status_name(PairStatus s)
{
    switch (s) {
      case PairStatus::Success:          return "S";
      case PairStatus::Unreachable:      return "UR";
      case PairStatus::Timeout:          return "FF";
      case PairStatus::ConversionFailed: return "FC";
    }
    return "?";
}

std::vector<runtime::TestCase>
LiftResult::suite() const
{
    std::vector<runtime::TestCase> out;
    for (const PairResult &p : pairs)
        for (const runtime::TestCase &t : p.tests)
            out.push_back(t);
    return out;
}

uint64_t
LiftResult::suite_cycles() const
{
    uint64_t total = 0;
    for (const PairResult &p : pairs)
        for (const runtime::TestCase &t : p.tests)
            total += t.cycle_cost;
    return total;
}

runtime::Detection
replay_on_module(const runtime::TestCase &tc, const Netlist &netlist,
                 bool has_random_input, uint64_t seed)
{
    Simulator sim(netlist);
    Rng rng(seed);
    bool is_fpu = tc.module == ModuleKind::Fpu32;

    size_t n = tc.stimulus.size();
    std::vector<uint32_t> r_out(n, 0);
    std::vector<bool> valid_out(n, false), ack_out(n, false);
    bool tag_anomaly = false;

    for (size_t t = 0; t < n + 2; ++t) {
        if (t < n) {
            const runtime::ModuleStep &s = tc.stimulus[t];
            sim.set_bus("a", BitVec(32, s.a));
            sim.set_bus("b", BitVec(32, s.b));
            sim.set_bus("op",
                        BitVec(tc.module == ModuleKind::Mdu32 ? 2
                               : is_fpu                       ? 3
                                                              : 4,
                               s.op));
            if (is_fpu) {
                sim.set_bus("valid", BitVec(1, s.valid ? 1 : 0));
                sim.set_bus("clear", BitVec(1, s.clear ? 1 : 0));
            }
        } else if (is_fpu) {
            sim.set_bus("valid", BitVec(1, 0));
            sim.set_bus("clear", BitVec(1, 0));
        }
        if (has_random_input)
            sim.set_bus("fm_rand", BitVec(1, rng.next() & 1));
        if (t >= 2) {
            size_t k = t - 2;
            r_out[k] = uint32_t(sim.bus_value("r").to_u64());
            if (is_fpu) {
                valid_out[k] = sim.bus_value("valid_out").to_u64() != 0;
                ack_out[k] = sim.bus_value("ack").to_u64() != 0;
            }
        }
        if (is_fpu) {
            // The transaction tag is checked continuously by the core:
            // dbg_out after t edges shows the parity of ops issued at
            // cycles <= t-3.
            size_t ops_visible = 0;
            for (size_t k = 0; k + 3 <= t && k < n; ++k)
                if (tc.stimulus[k].valid)
                    ++ops_visible;
            bool dbg = sim.bus_value("dbg_out").to_u64() != 0;
            if (dbg != (ops_visible % 2 == 1))
                tag_anomaly = true;
        }
        sim.step();
    }

    // A parked handshake is a stall the software watchdog catches.
    if (is_fpu) {
        for (size_t k = 0; k < n; ++k)
            if (tc.stimulus[k].valid && !(valid_out[k] && ack_out[k]))
                return runtime::Detection::Stall;
    }

    for (const runtime::ResultCheck &c : tc.checks)
        if (r_out[c.step] != c.expected)
            return runtime::Detection::Mismatch;

    if (is_fpu) {
        if (tc.check_final_flags) {
            uint8_t flags = uint8_t(sim.bus_value("flags").to_u64());
            if (flags != tc.expected_flags)
                return runtime::Detection::Mismatch;
        }
        // Transaction tag: settled state must show the parity of all
        // accepted ops, and no transient disagreement may have occurred.
        size_t n_ops = 0;
        for (const auto &s : tc.stimulus)
            if (s.valid)
                ++n_ops;
        bool dbg = sim.bus_value("dbg_out").to_u64() != 0;
        if (tag_anomaly || dbg != (n_ops % 2 == 1))
            return runtime::Detection::TagAnomaly;
    }
    return runtime::Detection::None;
}

namespace {

std::vector<std::pair<std::string, FailureModelSpec>>
make_configs(const sta::EndpointPair &pair, bool mitigation)
{
    std::vector<std::pair<std::string, FailureModelSpec>> out;
    FailureModelSpec base;
    base.launch = pair.launch;
    base.capture = pair.capture;
    base.is_setup = pair.is_setup;
    for (FaultConstant c : {FaultConstant::Zero, FaultConstant::One}) {
        if (!mitigation) {
            FailureModelSpec s = base;
            s.constant = c;
            s.mitigation = Mitigation::None;
            out.emplace_back(fault_constant_name(c), s);
        } else {
            for (Mitigation m :
                 {Mitigation::RisingEdge, Mitigation::FallingEdge}) {
                FailureModelSpec s = base;
                s.constant = c;
                s.mitigation = m;
                out.emplace_back(std::string(fault_constant_name(c)) + "," +
                                     mitigation_name(m),
                                 s);
            }
        }
    }
    return out;
}

/** Per-pair Table-4 rollup flags, filled config by config. */
struct PairFlags
{
    bool any_success = false;
    bool any_timeout = false;
    bool any_fc = false;
};

/**
 * Conversion + validation tail shared by the per-query and batched
 * paths: lower a Covered trace to a software test case, validate it
 * against the matching failing netlist, and record the ConfigOutcome.
 */
void
finalize_config(const HwModule &module, size_t pi, const std::string &name,
                const FailureModelSpec &spec, formal::BmcResult &&bmc,
                ConfigOutcome &&co, PairResult &pr, PairFlags &flags)
{
    co.bmc = bmc.status;
    co.proven_by_induction = bmc.proven_by_induction;
    co.frames = bmc.frames;
    co.conflicts = bmc.conflicts;

    if (bmc.status == formal::BmcStatus::Covered) {
        ConversionResult conv =
            build_test_case(module.kind, bmc.trace, int(pi), name);
        co.converted = conv.ok;
        co.failure_reason = conv.reason;
        if (conv.ok) {
            // Validate against the matching failing netlist: can this
            // block observe the modeled fault at all?
            FailingNetlist failing =
                build_failing_netlist(module.netlist, spec);
            runtime::Detection det =
                replay_on_module(conv.test, failing.netlist);
            co.validated = det != runtime::Detection::None;
            if (co.validated) {
                pr.tests.push_back(std::move(conv.test));
                flags.any_success = true;
            } else {
                co.failure_reason =
                    "no observable output distinguishes the fault";
                flags.any_fc = true;
            }
        } else {
            flags.any_fc = true;
        }
    } else if (bmc.status == formal::BmcStatus::Timeout) {
        flags.any_timeout = true;
    }
    pr.configs.push_back(std::move(co));
}

/** Fold one finished pair into the Table-4 aggregates. */
void
finish_pair(PairResult &&pr, const PairFlags &flags, LiftResult &result)
{
    if (flags.any_success)
        pr.status = PairStatus::Success;
    else if (flags.any_fc)
        pr.status = PairStatus::ConversionFailed;
    else if (flags.any_timeout)
        pr.status = PairStatus::Timeout;
    else
        pr.status = PairStatus::Unreachable;

    switch (pr.status) {
      case PairStatus::Success: ++result.n_success; break;
      case PairStatus::Unreachable: ++result.n_unreachable; break;
      case PairStatus::Timeout: ++result.n_timeout; break;
      case PairStatus::ConversionFailed:
        ++result.n_conversion_failed;
        break;
    }
    result.pairs.push_back(std::move(pr));
}

/**
 * §6.3 fuzz-first step shared by both paths. Returns true when the
 * config's verdict is decided without the formal engine (a fuzzer
 * trace, or the Fuzzing engine's structured giving-up outcome).
 */
bool
fuzz_first(const LiftConfig &config, const ShadowInstrumentation &shadow,
           ModuleKind kind, size_t pi, formal::BmcResult &bmc,
           ConfigOutcome &co)
{
    if (config.engine == TraceEngine::Formal)
        return false;
    FuzzConfig fcfg;
    fcfg.max_episodes = config.fuzz_episodes;
    fcfg.seed = 1234 + pi;
    FuzzResult fz = fuzz_cover(shadow, kind, fcfg);
    if (fz.found) {
        bmc.status = formal::BmcStatus::Covered;
        bmc.trace = std::move(fz.trace);
        bmc.frames = int(bmc.trace.num_cycles());
        co.fuzzed = true;
        co.attempts = 0;
        return true;
    }
    if (config.engine == TraceEngine::Fuzzing) {
        // Fuzzing alone cannot distinguish "unreachable" from "not
        // found": report the giving-up outcome.
        bmc.status = formal::BmcStatus::Timeout;
        co.attempts = 0;
        co.exhausted = true;
        co.error = make_error(ErrorCode::Exhausted,
                              "fuzzing found no trace in " +
                                  std::to_string(config.fuzz_episodes) +
                                  " episodes");
        return true;
    }
    return false;
}

/** The Timeout-triggered fuzz fallback + Exhausted bookkeeping shared
 *  by both paths (the last rungs of the degradation ladder). */
void
apply_degradation(const LiftConfig &config,
                  const ShadowInstrumentation &shadow, ModuleKind kind,
                  size_t pi, int attempts, uint64_t total_conflicts,
                  formal::BmcResult &bmc, ConfigOutcome &co)
{
    if (bmc.status == formal::BmcStatus::Timeout &&
        config.degrade_to_fuzz) {
        // Last rung of the ladder: trade proof power for a cheap
        // chance at a concrete trace.
        FuzzConfig fcfg;
        fcfg.max_episodes = config.fuzz_episodes;
        fcfg.seed = 1234 + pi;
        FuzzResult fz = fuzz_cover(shadow, kind, fcfg);
        if (fz.found) {
            bmc.status = formal::BmcStatus::Covered;
            bmc.trace = std::move(fz.trace);
            bmc.frames = int(bmc.trace.num_cycles());
            co.fuzzed = true;
            co.degraded_to_fuzz = true;
        }
    }
    if (bmc.status == formal::BmcStatus::Timeout) {
        co.exhausted = true;
        co.error = make_error(
            ErrorCode::Exhausted,
            "formal engine timed out after " + std::to_string(attempts) +
                " attempt(s), " + std::to_string(total_conflicts) +
                " conflicts" +
                (config.degrade_to_fuzz
                     ? ", and the fuzz fallback found no trace"
                     : ""));
    }
}

/**
 * Per-query reference path: one deepening loop (check_cover /
 * CoverSession) per configuration. Kept verbatim as the semantics
 * oracle the batched path is pinned against.
 */
LiftResult
run_error_lifting_scalar(const HwModule &module,
                         const std::vector<sta::EndpointPair> &pairs,
                         const LiftConfig &config)
{
    LiftResult result;
    size_t limit = std::min(pairs.size(), config.max_pairs);

    for (size_t pi = 0; pi < limit; ++pi) {
        const sta::EndpointPair &pair = pairs[pi];
        PairResult pr;
        pr.pair = pair;

        if (pair.launch == kInvalidId) {
            // Primary-input-launched path: the upstream register lives
            // outside this module; not modeled (and not produced by our
            // registered-input modules in practice).
            pr.status = PairStatus::Unreachable;
            result.pairs.push_back(std::move(pr));
            ++result.n_unreachable;
            continue;
        }

        PairFlags flags;
        for (auto &[name, spec] : make_configs(pair, config.mitigation)) {
            ConfigOutcome co;
            co.spec = spec;
            co.name = name;

            ShadowInstrumentation shadow =
                build_shadow_instrumentation(module.netlist, spec);

            formal::BmcResult bmc;
            if (!fuzz_first(config, shadow, module.kind, pi, bmc, co)) {
                formal::BmcOptions opts = config.bmc;
                opts.assumes = build_assumes(shadow.netlist, module.kind);
                opts.state_equalities = shadow.state_pairs;
                formal::EscalationPolicy policy;
                policy.max_attempts = config.formal_attempts;
                policy.budget_growth = config.formal_budget_growth;
                // Under the incremental engine the escalation rungs
                // resume one CoverSession (frames + learned clauses
                // survive each retry); see check_cover_escalating.
                formal::EscalatedBmcResult esc = formal::check_cover_escalating(
                    shadow.netlist, shadow.mismatch, opts, policy);
                bmc = std::move(esc.result);
                bmc.conflicts = esc.total_conflicts;
                co.attempts = esc.attempts;
                apply_degradation(config, shadow, module.kind, pi,
                                  esc.attempts, esc.total_conflicts, bmc,
                                  co);
            }
            finalize_config(module, pi, name, spec, std::move(bmc),
                            std::move(co), pr, flags);
        }
        finish_pair(std::move(pr), flags, result);
    }
    return result;
}

/**
 * Suite-level path: every fault configuration of a pair-batch becomes
 * one target of a formal::CoverBatch over a shared shadow bank, so the
 * module is unrolled once per frame for the whole batch and the
 * escalation ladder resumes only the starved targets. Witnesses are
 * re-derived on each config's own shadow instrumentation, keeping
 * per-config results byte-identical to the scalar path.
 */
LiftResult
run_error_lifting_batched(const HwModule &module,
                          const std::vector<sta::EndpointPair> &pairs,
                          const LiftConfig &config)
{
    LiftResult result;
    size_t limit = std::min(pairs.size(), config.max_pairs);
    size_t stride = std::max<size_t>(1, config.batch_pairs);

    for (size_t chunk = 0; chunk < limit; chunk += stride) {
        size_t chunk_end = std::min(limit, chunk + stride);

        /** One fault configuration of the chunk. */
        struct Entry
        {
            size_t pi = 0;
            std::string name;
            FailureModelSpec spec;
            ShadowInstrumentation shadow;
            ConfigOutcome co;
            formal::BmcResult bmc;
            bool needs_formal = false;
            int target = -1; ///< CoverBatch target index
        };
        struct PairWork
        {
            PairResult pr;
            PairFlags flags;
            bool skipped = false;
            size_t first_entry = 0;
            size_t n_entries = 0;
        };
        std::vector<Entry> entries;
        std::vector<PairWork> work;

        for (size_t pi = chunk; pi < chunk_end; ++pi) {
            const sta::EndpointPair &pair = pairs[pi];
            PairWork pw;
            pw.pr.pair = pair;
            if (pair.launch == kInvalidId) {
                // Primary-input-launched path: the upstream register
                // lives outside this module; not modeled.
                pw.skipped = true;
                work.push_back(std::move(pw));
                continue;
            }
            pw.first_entry = entries.size();
            for (auto &[name, spec] :
                 make_configs(pair, config.mitigation)) {
                Entry e;
                e.pi = pi;
                e.name = name;
                e.spec = spec;
                e.co.spec = spec;
                e.co.name = name;
                e.shadow =
                    build_shadow_instrumentation(module.netlist, spec);
                e.needs_formal = !fuzz_first(config, e.shadow, module.kind,
                                             pi, e.bmc, e.co);
                entries.push_back(std::move(e));
            }
            pw.n_entries = entries.size() - pw.first_entry;
            work.push_back(std::move(pw));
        }

        std::vector<size_t> formal_idx;
        for (size_t i = 0; i < entries.size(); ++i)
            if (entries[i].needs_formal)
                formal_idx.push_back(i);

        if (!formal_idx.empty()) {
            std::vector<FailureModelSpec> specs;
            specs.reserve(formal_idx.size());
            for (size_t i : formal_idx)
                specs.push_back(entries[i].spec);
            ShadowBank bank = build_shadow_bank(module.netlist, specs);

            formal::BmcOptions opts = config.bmc;
            opts.assumes = build_assumes(bank.netlist, module.kind);
            formal::CoverBatch batch(bank.netlist, opts);
            for (size_t j = 0; j < formal_idx.size(); ++j) {
                Entry &e = entries[formal_idx[j]];
                formal::CoverTargetSpec ts;
                ts.target = bank.cones[j].mismatch;
                ts.state_equalities = bank.cones[j].state_pairs;
                ts.witness_netlist = &e.shadow.netlist;
                ts.witness_target = e.shadow.mismatch;
                ts.witness_assumes =
                    build_assumes(e.shadow.netlist, module.kind);
                e.target = batch.add_target(std::move(ts));
            }

            // The per-batch escalation ladder: each rung resumes only
            // the still-starved targets with the budgets grown, frames
            // and learned clauses intact (cf. check_cover_escalating).
            static obs::Counter &escalations =
                obs::counter("bmc.escalations");
            int max_attempts = std::max(1, config.formal_attempts);
            int64_t budget = opts.conflict_budget;
            double wall = opts.wall_budget_seconds;
            std::vector<uint64_t> total_conflicts(formal_idx.size(), 0);
            std::vector<int> attempts(formal_idx.size(), 0);
            for (int attempt = 1;; ++attempt) {
                batch.run(budget, wall);
                for (size_t j = 0; j < formal_idx.size(); ++j) {
                    const Entry &e = entries[formal_idx[j]];
                    total_conflicts[j] += batch.result(e.target).conflicts;
                    if (attempts[j] == 0 && batch.settled(e.target))
                        attempts[j] = attempt;
                }
                if (attempt >= max_attempts || batch.all_settled())
                    break;
                escalations.inc();
                budget = int64_t(double(budget) *
                                 config.formal_budget_growth);
                if (wall >= 0.0)
                    wall *= config.formal_budget_growth;
            }
            for (size_t j = 0; j < formal_idx.size(); ++j) {
                Entry &e = entries[formal_idx[j]];
                e.bmc = batch.result(e.target);
                e.bmc.conflicts = total_conflicts[j];
                e.co.attempts =
                    attempts[j] ? attempts[j] : max_attempts;
                apply_degradation(config, e.shadow, module.kind, e.pi,
                                  e.co.attempts, total_conflicts[j],
                                  e.bmc, e.co);
            }
        }

        // Emit results in pair order, configs in make_configs order —
        // exactly the scalar path's output shape.
        for (PairWork &pw : work) {
            if (pw.skipped) {
                pw.pr.status = PairStatus::Unreachable;
                result.pairs.push_back(std::move(pw.pr));
                ++result.n_unreachable;
                continue;
            }
            for (size_t i = pw.first_entry;
                 i < pw.first_entry + pw.n_entries; ++i) {
                Entry &e = entries[i];
                finalize_config(module, e.pi, e.name, e.spec,
                                std::move(e.bmc), std::move(e.co), pw.pr,
                                pw.flags);
            }
            finish_pair(std::move(pw.pr), pw.flags, result);
        }
    }
    return result;
}

} // namespace

LiftResult
run_error_lifting(const HwModule &module,
                  const std::vector<sta::EndpointPair> &pairs,
                  const LiftConfig &config)
{
    if (config.batch_cover)
        return run_error_lifting_batched(module, pairs, config);
    return run_error_lifting_scalar(module, pairs, config);
}

} // namespace vega::lift
