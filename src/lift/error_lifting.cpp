#include "lift/error_lifting.h"

#include "common/logging.h"
#include "common/rng.h"
#include "lift/fuzz_lifting.h"
#include "sim/simulator.h"

namespace vega::lift {

const char *
trace_engine_name(TraceEngine engine)
{
    switch (engine) {
      case TraceEngine::Formal:  return "formal";
      case TraceEngine::Fuzzing: return "fuzzing";
      case TraceEngine::Hybrid:  return "hybrid";
    }
    return "?";
}

const char *
pair_status_name(PairStatus s)
{
    switch (s) {
      case PairStatus::Success:          return "S";
      case PairStatus::Unreachable:      return "UR";
      case PairStatus::Timeout:          return "FF";
      case PairStatus::ConversionFailed: return "FC";
    }
    return "?";
}

std::vector<runtime::TestCase>
LiftResult::suite() const
{
    std::vector<runtime::TestCase> out;
    for (const PairResult &p : pairs)
        for (const runtime::TestCase &t : p.tests)
            out.push_back(t);
    return out;
}

uint64_t
LiftResult::suite_cycles() const
{
    uint64_t total = 0;
    for (const PairResult &p : pairs)
        for (const runtime::TestCase &t : p.tests)
            total += t.cycle_cost;
    return total;
}

runtime::Detection
replay_on_module(const runtime::TestCase &tc, const Netlist &netlist,
                 bool has_random_input, uint64_t seed)
{
    Simulator sim(netlist);
    Rng rng(seed);
    bool is_fpu = tc.module == ModuleKind::Fpu32;

    size_t n = tc.stimulus.size();
    std::vector<uint32_t> r_out(n, 0);
    std::vector<bool> valid_out(n, false), ack_out(n, false);
    bool tag_anomaly = false;

    for (size_t t = 0; t < n + 2; ++t) {
        if (t < n) {
            const runtime::ModuleStep &s = tc.stimulus[t];
            sim.set_bus("a", BitVec(32, s.a));
            sim.set_bus("b", BitVec(32, s.b));
            sim.set_bus("op",
                        BitVec(tc.module == ModuleKind::Mdu32 ? 2
                               : is_fpu                       ? 3
                                                              : 4,
                               s.op));
            if (is_fpu) {
                sim.set_bus("valid", BitVec(1, s.valid ? 1 : 0));
                sim.set_bus("clear", BitVec(1, s.clear ? 1 : 0));
            }
        } else if (is_fpu) {
            sim.set_bus("valid", BitVec(1, 0));
            sim.set_bus("clear", BitVec(1, 0));
        }
        if (has_random_input)
            sim.set_bus("fm_rand", BitVec(1, rng.next() & 1));
        if (t >= 2) {
            size_t k = t - 2;
            r_out[k] = uint32_t(sim.bus_value("r").to_u64());
            if (is_fpu) {
                valid_out[k] = sim.bus_value("valid_out").to_u64() != 0;
                ack_out[k] = sim.bus_value("ack").to_u64() != 0;
            }
        }
        if (is_fpu) {
            // The transaction tag is checked continuously by the core:
            // dbg_out after t edges shows the parity of ops issued at
            // cycles <= t-3.
            size_t ops_visible = 0;
            for (size_t k = 0; k + 3 <= t && k < n; ++k)
                if (tc.stimulus[k].valid)
                    ++ops_visible;
            bool dbg = sim.bus_value("dbg_out").to_u64() != 0;
            if (dbg != (ops_visible % 2 == 1))
                tag_anomaly = true;
        }
        sim.step();
    }

    // A parked handshake is a stall the software watchdog catches.
    if (is_fpu) {
        for (size_t k = 0; k < n; ++k)
            if (tc.stimulus[k].valid && !(valid_out[k] && ack_out[k]))
                return runtime::Detection::Stall;
    }

    for (const runtime::ResultCheck &c : tc.checks)
        if (r_out[c.step] != c.expected)
            return runtime::Detection::Mismatch;

    if (is_fpu) {
        if (tc.check_final_flags) {
            uint8_t flags = uint8_t(sim.bus_value("flags").to_u64());
            if (flags != tc.expected_flags)
                return runtime::Detection::Mismatch;
        }
        // Transaction tag: settled state must show the parity of all
        // accepted ops, and no transient disagreement may have occurred.
        size_t n_ops = 0;
        for (const auto &s : tc.stimulus)
            if (s.valid)
                ++n_ops;
        bool dbg = sim.bus_value("dbg_out").to_u64() != 0;
        if (tag_anomaly || dbg != (n_ops % 2 == 1))
            return runtime::Detection::TagAnomaly;
    }
    return runtime::Detection::None;
}

namespace {

std::vector<std::pair<std::string, FailureModelSpec>>
make_configs(const sta::EndpointPair &pair, bool mitigation)
{
    std::vector<std::pair<std::string, FailureModelSpec>> out;
    FailureModelSpec base;
    base.launch = pair.launch;
    base.capture = pair.capture;
    base.is_setup = pair.is_setup;
    for (FaultConstant c : {FaultConstant::Zero, FaultConstant::One}) {
        if (!mitigation) {
            FailureModelSpec s = base;
            s.constant = c;
            s.mitigation = Mitigation::None;
            out.emplace_back(fault_constant_name(c), s);
        } else {
            for (Mitigation m :
                 {Mitigation::RisingEdge, Mitigation::FallingEdge}) {
                FailureModelSpec s = base;
                s.constant = c;
                s.mitigation = m;
                out.emplace_back(std::string(fault_constant_name(c)) + "," +
                                     mitigation_name(m),
                                 s);
            }
        }
    }
    return out;
}

} // namespace

LiftResult
run_error_lifting(const HwModule &module,
                  const std::vector<sta::EndpointPair> &pairs,
                  const LiftConfig &config)
{
    LiftResult result;
    size_t limit = std::min(pairs.size(), config.max_pairs);

    for (size_t pi = 0; pi < limit; ++pi) {
        const sta::EndpointPair &pair = pairs[pi];
        PairResult pr;
        pr.pair = pair;

        if (pair.launch == kInvalidId) {
            // Primary-input-launched path: the upstream register lives
            // outside this module; not modeled (and not produced by our
            // registered-input modules in practice).
            pr.status = PairStatus::Unreachable;
            result.pairs.push_back(std::move(pr));
            ++result.n_unreachable;
            continue;
        }

        bool any_success = false, any_timeout = false, any_fc = false;
        for (auto &[name, spec] : make_configs(pair, config.mitigation)) {
            ConfigOutcome co;
            co.spec = spec;
            co.name = name;

            ShadowInstrumentation shadow =
                build_shadow_instrumentation(module.netlist, spec);

            // §6.3: optionally explore cheaply with the fuzzer before
            // (or instead of) the formal engine.
            formal::BmcResult bmc;
            bool have_trace = false;
            if (config.engine != TraceEngine::Formal) {
                FuzzConfig fcfg;
                fcfg.max_episodes = config.fuzz_episodes;
                fcfg.seed = 1234 + pi;
                FuzzResult fz = fuzz_cover(shadow, module.kind, fcfg);
                if (fz.found) {
                    bmc.status = formal::BmcStatus::Covered;
                    bmc.trace = std::move(fz.trace);
                    bmc.frames = int(bmc.trace.num_cycles());
                    co.fuzzed = true;
                    co.attempts = 0;
                    have_trace = true;
                } else if (config.engine == TraceEngine::Fuzzing) {
                    // Fuzzing alone cannot distinguish "unreachable"
                    // from "not found": report the giving-up outcome.
                    bmc.status = formal::BmcStatus::Timeout;
                    co.attempts = 0;
                    co.exhausted = true;
                    co.error = make_error(
                        ErrorCode::Exhausted,
                        "fuzzing found no trace in " +
                            std::to_string(config.fuzz_episodes) +
                            " episodes");
                    have_trace = true;
                }
            }
            if (!have_trace) {
                formal::BmcOptions opts = config.bmc;
                opts.assumes = build_assumes(shadow.netlist, module.kind);
                opts.state_equalities = shadow.state_pairs;
                formal::EscalationPolicy policy;
                policy.max_attempts = config.formal_attempts;
                policy.budget_growth = config.formal_budget_growth;
                // Under the incremental engine the escalation rungs
                // resume one CoverSession (frames + learned clauses
                // survive each retry); see check_cover_escalating.
                formal::EscalatedBmcResult esc = formal::check_cover_escalating(
                    shadow.netlist, shadow.mismatch, opts, policy);
                bmc = std::move(esc.result);
                bmc.conflicts = esc.total_conflicts;
                co.attempts = esc.attempts;

                if (bmc.status == formal::BmcStatus::Timeout &&
                    config.degrade_to_fuzz) {
                    // Last rung of the ladder: trade proof power for a
                    // cheap chance at a concrete trace.
                    FuzzConfig fcfg;
                    fcfg.max_episodes = config.fuzz_episodes;
                    fcfg.seed = 1234 + pi;
                    FuzzResult fz = fuzz_cover(shadow, module.kind, fcfg);
                    if (fz.found) {
                        bmc.status = formal::BmcStatus::Covered;
                        bmc.trace = std::move(fz.trace);
                        bmc.frames = int(bmc.trace.num_cycles());
                        co.fuzzed = true;
                        co.degraded_to_fuzz = true;
                    }
                }
                if (bmc.status == formal::BmcStatus::Timeout) {
                    co.exhausted = true;
                    co.error = make_error(
                        ErrorCode::Exhausted,
                        "formal engine timed out after " +
                            std::to_string(esc.attempts) + " attempt(s), " +
                            std::to_string(esc.total_conflicts) +
                            " conflicts" +
                            (config.degrade_to_fuzz
                                 ? ", and the fuzz fallback found no trace"
                                 : ""));
                }
            }
            co.bmc = bmc.status;
            co.proven_by_induction = bmc.proven_by_induction;
            co.frames = bmc.frames;
            co.conflicts = bmc.conflicts;

            if (bmc.status == formal::BmcStatus::Covered) {
                ConversionResult conv = build_test_case(
                    module.kind, bmc.trace, int(pi), name);
                co.converted = conv.ok;
                co.failure_reason = conv.reason;
                if (conv.ok) {
                    // Validate against the matching failing netlist: can
                    // this block observe the modeled fault at all?
                    FailingNetlist failing =
                        build_failing_netlist(module.netlist, spec);
                    runtime::Detection det =
                        replay_on_module(conv.test, failing.netlist);
                    co.validated = det != runtime::Detection::None;
                    if (co.validated) {
                        pr.tests.push_back(std::move(conv.test));
                        any_success = true;
                    } else {
                        co.failure_reason =
                            "no observable output distinguishes the fault";
                        any_fc = true;
                    }
                } else {
                    any_fc = true;
                }
            } else if (bmc.status == formal::BmcStatus::Timeout) {
                any_timeout = true;
            }
            pr.configs.push_back(std::move(co));
        }

        if (any_success)
            pr.status = PairStatus::Success;
        else if (any_fc)
            pr.status = PairStatus::ConversionFailed;
        else if (any_timeout)
            pr.status = PairStatus::Timeout;
        else
            pr.status = PairStatus::Unreachable;

        switch (pr.status) {
          case PairStatus::Success: ++result.n_success; break;
          case PairStatus::Unreachable: ++result.n_unreachable; break;
          case PairStatus::Timeout: ++result.n_timeout; break;
          case PairStatus::ConversionFailed:
            ++result.n_conversion_failed;
            break;
        }
        result.pairs.push_back(std::move(pr));
    }
    return result;
}

} // namespace vega::lift
