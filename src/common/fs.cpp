#include "common/fs.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define VEGA_HAVE_FSYNC 1
#endif

namespace vega {

Expected<std::string>
read_file(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return make_error(ErrorCode::IoError,
                          "cannot open " + path + ": " +
                              std::strerror(errno));
    std::string content;
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        content.append(buf, n);
    bool failed = std::ferror(f) != 0;
    std::fclose(f);
    if (failed)
        return make_error(ErrorCode::IoError, "read failed on " + path);
    return content;
}

bool
file_exists(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    std::fclose(f);
    return true;
}

Expected<void>
make_dirs(const std::string &dir)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        return make_error(ErrorCode::IoError,
                          "cannot create " + dir + ": " + ec.message());
    return {};
}

std::string
atomic_temp_path(const std::string &path)
{
    return path + ".tmp";
}

Expected<void>
write_file_atomic(const std::string &path, const std::string &content)
{
    const std::string tmp = atomic_temp_path(path);
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        return make_error(ErrorCode::IoError,
                          "cannot create " + tmp + ": " +
                              std::strerror(errno));
    bool ok = std::fwrite(content.data(), 1, content.size(), f) ==
              content.size();
    ok = std::fflush(f) == 0 && ok;
#ifdef VEGA_HAVE_FSYNC
    // The rename is only crash-safe if the data hits stable storage
    // before the directory entry flips.
    ok = fsync(fileno(f)) == 0 && ok;
#endif
    ok = std::fclose(f) == 0 && ok;
    if (!ok) {
        std::remove(tmp.c_str());
        return make_error(ErrorCode::IoError, "write failed on " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return make_error(ErrorCode::IoError,
                          "rename " + tmp + " -> " + path + ": " +
                              std::strerror(errno));
    }
    return {};
}

} // namespace vega
