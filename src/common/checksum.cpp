#include "common/checksum.h"

#include <bit>
#include <cstdio>
#include <cstring>

namespace vega {

namespace {

/** Reflected CRC32C polynomial (0x1EDC6F41 bit-reversed). */
constexpr uint32_t kPoly = 0x82f63b78u;

/**
 * Slice-by-8 tables: table[0] is the classic byte-at-a-time table;
 * table[s][b] advances byte b through s+1 further zero bytes, letting
 * the hot loop fold 8 input bytes with 8 independent lookups per
 * iteration instead of 8 serial ones.
 */
struct Tables
{
    uint32_t t[8][256];
};

const Tables &
tables()
{
    static const Tables tbl = [] {
        Tables t{};
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? kPoly ^ (c >> 1) : c >> 1;
            t.t[0][i] = c;
        }
        for (uint32_t i = 0; i < 256; ++i)
            for (int s = 1; s < 8; ++s)
                t.t[s][i] =
                    (t.t[s - 1][i] >> 8) ^ t.t[0][t.t[s - 1][i] & 0xff];
        return t;
    }();
    return tbl;
}

inline uint32_t
step(const Tables &T, uint32_t c, uint8_t byte)
{
    return (c >> 8) ^ T.t[0][(c ^ byte) & 0xff];
}

} // namespace

void
Crc32c::update(const void *data, size_t size)
{
    const Tables &T = tables();
    const uint8_t *p = static_cast<const uint8_t *>(data);
    uint32_t c = state_;

    if constexpr (std::endian::native == std::endian::little) {
        // Align, then fold 8 bytes per iteration.
        while (size && (reinterpret_cast<uintptr_t>(p) & 7)) {
            c = step(T, c, *p++);
            --size;
        }
        while (size >= 8) {
            uint32_t lo, hi;
            std::memcpy(&lo, p, 4);
            std::memcpy(&hi, p + 4, 4);
            c ^= lo;
            c = T.t[7][c & 0xff] ^ T.t[6][(c >> 8) & 0xff] ^
                T.t[5][(c >> 16) & 0xff] ^ T.t[4][c >> 24] ^
                T.t[3][hi & 0xff] ^ T.t[2][(hi >> 8) & 0xff] ^
                T.t[1][(hi >> 16) & 0xff] ^ T.t[0][hi >> 24];
            p += 8;
            size -= 8;
        }
    }
    while (size--)
        c = step(T, c, *p++);
    state_ = c;
}

uint32_t
crc32c(const void *data, size_t size)
{
    Crc32c c;
    c.update(data, size);
    return c.value();
}

std::string
crc32c_hex(uint32_t crc)
{
    char buf[12];
    std::snprintf(buf, sizeof buf, "%08x", crc);
    return buf;
}

bool
parse_crc32c_hex(const std::string &hex, uint32_t &out)
{
    if (hex.size() != 8)
        return false;
    uint32_t v = 0;
    for (char ch : hex) {
        uint32_t d;
        if (ch >= '0' && ch <= '9')
            d = uint32_t(ch - '0');
        else if (ch >= 'a' && ch <= 'f')
            d = uint32_t(ch - 'a') + 10;
        else if (ch >= 'A' && ch <= 'F')
            d = uint32_t(ch - 'A') + 10;
        else
            return false;
        v = (v << 4) | d;
    }
    out = v;
    return true;
}

} // namespace vega
