/**
 * @file
 * Crash-safe filesystem helpers.
 *
 * Every artifact Vega persists (campaign reports, checkpoint journals)
 * goes through write_file_atomic: the content is written to a sibling
 * temp file, flushed to stable storage, and renamed over the target.
 * A killed process therefore never leaves a half-written file — readers
 * see either the previous complete version or the new one.
 */
#pragma once

#include <string>

#include "common/error.h"

namespace vega {

/** Whole-file read. */
Expected<std::string> read_file(const std::string &path);

/** True when @p path exists and is readable. */
bool file_exists(const std::string &path);

/** mkdir -p: create @p dir and any missing parents. */
Expected<void> make_dirs(const std::string &dir);

/**
 * The sibling temp path write_file_atomic stages through
 * ("<path>.tmp"). Exposed so tests can assert the protocol.
 */
std::string atomic_temp_path(const std::string &path);

/**
 * Write @p content to @p path atomically: temp file, flush + fsync,
 * rename. On failure the temp file is removed and @p path is left
 * untouched.
 */
Expected<void> write_file_atomic(const std::string &path,
                                 const std::string &content);

} // namespace vega
