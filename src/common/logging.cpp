#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace vega {

namespace {

/**
 * The level lives in an atomic so worker threads can log while the
 * main thread adjusts verbosity. -1 means "not yet initialized": the
 * first reader resolves VEGA_LOG_LEVEL from the environment exactly
 * once (a benign race — every thread computes the same value).
 */
std::atomic<int> g_level{-1};

const char *
level_name(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info:  return "info";
      case LogLevel::Warn:  return "warn";
      case LogLevel::Error: return "error";
    }
    return "?";
}

int
resolve_level()
{
    int lvl = g_level.load(std::memory_order_relaxed);
    if (lvl >= 0)
        return lvl;
    LogLevel parsed = LogLevel::Info;
    const char *env = std::getenv("VEGA_LOG_LEVEL");
    if (env && !parse_log_level(env, parsed))
        std::fprintf(stderr,
                     "[vega:warn] VEGA_LOG_LEVEL='%s' is not a level "
                     "(debug|info|warn|error); using info\n",
                     env);
    lvl = static_cast<int>(parsed);
    g_level.store(lvl, std::memory_order_relaxed);
    return lvl;
}

} // namespace

bool
parse_log_level(const std::string &name, LogLevel &out)
{
    for (LogLevel l : {LogLevel::Debug, LogLevel::Info, LogLevel::Warn,
                       LogLevel::Error})
        if (name == level_name(l)) {
            out = l;
            return true;
        }
    return false;
}

void
set_log_level(LogLevel level)
{
    g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel
log_level()
{
    return static_cast<LogLevel>(resolve_level());
}

void
log(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) < resolve_level())
        return;
    // One fwrite per line: concurrent loggers may interleave whole
    // lines but never splice characters, and stderr needs no flush.
    std::string line = "[vega:";
    line += level_name(level);
    line += "] ";
    line += msg;
    line += '\n';
    std::fwrite(line.data(), 1, line.size(), stderr);
}

void
fatal(const std::string &msg)
{
    std::string line = "[vega:fatal] " + msg + "\n";
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::exit(1);
}

void
panic(const std::string &msg)
{
    std::string line = "[vega:panic] " + msg + "\n";
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::abort();
}

} // namespace vega
