#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace vega {

namespace {
LogLevel g_level = LogLevel::Info;

const char *
level_name(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info:  return "info";
      case LogLevel::Warn:  return "warn";
      case LogLevel::Error: return "error";
    }
    return "?";
}
} // namespace

void
set_log_level(LogLevel level)
{
    g_level = level;
}

LogLevel
log_level()
{
    return g_level;
}

void
log(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) < static_cast<int>(g_level))
        return;
    std::fprintf(stderr, "[vega:%s] %s\n", level_name(level), msg.c_str());
}

void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "[vega:fatal] %s\n", msg.c_str());
    std::exit(1);
}

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "[vega:panic] %s\n", msg.c_str());
    std::abort();
}

} // namespace vega
