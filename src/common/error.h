/**
 * @file
 * Structured error propagation for the fault-tolerant pipeline.
 *
 * Vega's own infrastructure must behave like production software under
 * faults: a malformed netlist, an exhausted SAT budget, or a crashed
 * campaign job is an *outcome*, not a terminate(). Recoverable paths
 * return Expected<T> carrying a VegaError — a stable machine-readable
 * ErrorCode plus a human-readable context string — instead of throwing
 * or aborting. VEGA_CHECK/panic remain reserved for genuine internal
 * invariant violations.
 */
#pragma once

#include <string>
#include <utility>
#include <variant>

namespace vega {

/**
 * Stable error codes. Names (error_code_name) are part of the journal
 * and report formats — append new codes, never renumber.
 */
enum class ErrorCode : uint8_t {
    Ok = 0,
    InvalidArgument, ///< caller handed nonsense (bad config / flag)
    ParseError,      ///< malformed input text; context carries location
    ValidationError, ///< parsed but violates semantic limits
    IoError,         ///< filesystem operation failed
    Timeout,         ///< a conflict or wall-clock budget ran out
    Exhausted,       ///< every rung of a retry/degradation ladder failed
    JobFailed,       ///< a campaign job threw/trapped on every attempt
    JournalCorrupt,  ///< checkpoint journal unreadable
    JournalMismatch, ///< checkpoint journal from an incompatible config
    JournalRecordCorrupt,  ///< a v2 record failed its per-line checksum
    JournalTrailerMismatch, ///< v2 trailer count/rolling-crc mismatch
    ShardIncomplete, ///< shard journal unfinalized or job ids missing
};

/** Stable kebab-case name, e.g. "parse-error". */
const char *error_code_name(ErrorCode code);

/** Inverse of error_code_name; ErrorCode::Ok for unknown names. */
ErrorCode parse_error_code(const std::string &name);

struct VegaError
{
    ErrorCode code = ErrorCode::Ok;
    std::string context;

    /** "parse-error: line 3: expected ';'" */
    std::string to_string() const;
};

inline VegaError
make_error(ErrorCode code, std::string context)
{
    return VegaError{code, std::move(context)};
}

/**
 * A value or a VegaError. Minimal stand-in for std::expected (C++23):
 * construction is implicit from either alternative, access is checked
 * by the underlying variant.
 */
template <typename T>
class [[nodiscard]] Expected
{
  public:
    Expected(T value) : v_(std::in_place_index<0>, std::move(value)) {}
    Expected(VegaError error)
        : v_(std::in_place_index<1>, std::move(error))
    {
    }

    bool ok() const { return v_.index() == 0; }
    explicit operator bool() const { return ok(); }

    T &value() & { return std::get<0>(v_); }
    const T &value() const & { return std::get<0>(v_); }
    T &&value() && { return std::get<0>(std::move(v_)); }

    const VegaError &error() const { return std::get<1>(v_); }

    T *operator->() { return &value(); }
    const T *operator->() const { return &value(); }
    T &operator*() & { return value(); }
    const T &operator*() const & { return value(); }

  private:
    std::variant<T, VegaError> v_;
};

/** Expected<void>: success, or a VegaError. */
template <>
class [[nodiscard]] Expected<void>
{
  public:
    Expected() = default;
    Expected(VegaError error) : err_(std::move(error)) {}

    bool ok() const { return err_.code == ErrorCode::Ok; }
    explicit operator bool() const { return ok(); }

    const VegaError &error() const { return err_; }

  private:
    VegaError err_;
};

} // namespace vega
