/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Vega's evaluation (random test baselines in Table 7, random failure-mode
 * 'R' in Table 6, scheduler shuffling) must be reproducible run-to-run, so
 * everything random flows through this explicitly-seeded generator rather
 * than std::random_device.
 */
#pragma once

#include <cstdint>

namespace vega {

/** xoshiro256** — small, fast, high-quality PRNG (public-domain algorithm). */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Uniform 64-bit value. */
    uint64_t next();

    /** Uniform integer in [0, bound) using rejection sampling. */
    uint64_t below(uint64_t bound);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static uint64_t splitmix(uint64_t &x);
    uint64_t s_[4];
};

} // namespace vega
