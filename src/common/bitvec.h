/**
 * @file
 * Arbitrary-width bit vector used for bus values throughout Vega.
 *
 * Netlists operate on single-bit nets, but module-level interfaces (ALU
 * operands, FPU results, waveform rows) are buses of up to a few hundred
 * bits. BitVec stores such values compactly and provides the slicing and
 * integer conversions the simulator, BMC trace extraction, and instruction
 * construction need.
 */
#pragma once

#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

namespace vega {

/**
 * A fixed-width vector of bits, little-endian (bit 0 is the LSB).
 *
 * Width is set at construction and never changes; out-of-range accesses
 * are programming errors and assert in debug builds.
 */
class BitVec
{
  public:
    /** Construct a zero-filled vector of @p width bits. */
    explicit BitVec(size_t width = 0);

    /** Construct from the low @p width bits of @p value. */
    BitVec(size_t width, uint64_t value);

    /** Parse a binary string, e.g. "0b1011" or "1011" (MSB first). */
    static BitVec from_binary(const std::string &text);

    size_t width() const { return width_; }
    bool empty() const { return width_ == 0; }

    bool get(size_t i) const;
    void set(size_t i, bool v);

    /** The low 64 bits as an integer (width may exceed 64; high bits drop). */
    uint64_t to_u64() const;

    /** Bits [lo, lo+len) as a new vector. */
    BitVec slice(size_t lo, size_t len) const;

    /** Overwrite bits [lo, lo+src.width()) with @p src. */
    void splice(size_t lo, const BitVec &src);

    /** Number of set bits. */
    size_t popcount() const;

    /** MSB-first binary string, e.g. "1011". */
    std::string to_binary() const;

    bool operator==(const BitVec &o) const;
    bool operator!=(const BitVec &o) const { return !(*this == o); }

  private:
    static size_t words_for(size_t width) { return (width + 63) / 64; }
    void mask_top();

    size_t width_;
    std::vector<uint64_t> words_;
};

} // namespace vega
