#include "common/error.h"

#include <array>

namespace vega {

namespace {

struct CodeName
{
    ErrorCode code;
    const char *name;
};

constexpr std::array<CodeName, 13> kCodeNames = {{
    {ErrorCode::Ok, "ok"},
    {ErrorCode::InvalidArgument, "invalid-argument"},
    {ErrorCode::ParseError, "parse-error"},
    {ErrorCode::ValidationError, "validation-error"},
    {ErrorCode::IoError, "io-error"},
    {ErrorCode::Timeout, "timeout"},
    {ErrorCode::Exhausted, "exhausted"},
    {ErrorCode::JobFailed, "job-failed"},
    {ErrorCode::JournalCorrupt, "journal-corrupt"},
    {ErrorCode::JournalMismatch, "journal-mismatch"},
    {ErrorCode::JournalRecordCorrupt, "journal-record-corrupt"},
    {ErrorCode::JournalTrailerMismatch, "journal-trailer-mismatch"},
    {ErrorCode::ShardIncomplete, "shard-incomplete"},
}};

} // namespace

const char *
error_code_name(ErrorCode code)
{
    for (const CodeName &cn : kCodeNames)
        if (cn.code == code)
            return cn.name;
    return "?";
}

ErrorCode
parse_error_code(const std::string &name)
{
    for (const CodeName &cn : kCodeNames)
        if (name == cn.name)
            return cn.code;
    return ErrorCode::Ok;
}

std::string
VegaError::to_string() const
{
    std::string out = error_code_name(code);
    if (!context.empty()) {
        out += ": ";
        out += context;
    }
    return out;
}

} // namespace vega
