/**
 * @file
 * Minimal logging and error-checking utilities.
 *
 * Follows the gem5 fatal/panic distinction: fatal() is a user error (bad
 * configuration, invalid input) and exits cleanly; panic() is an internal
 * invariant violation and aborts.
 */
#pragma once

#include <sstream>
#include <string>

namespace vega {

enum class LogLevel { Debug, Info, Warn, Error };

/**
 * Set the minimum level that log() actually emits. The default is
 * Info, or whatever the VEGA_LOG_LEVEL environment variable names
 * (debug|info|warn|error) when the process first logs; an explicit
 * set_log_level always wins over the environment. Both calls are
 * thread-safe.
 */
void set_log_level(LogLevel level);
LogLevel log_level();

/** "debug"|"info"|"warn"|"error" => the level; anything else false. */
bool parse_log_level(const std::string &name, LogLevel &out);

/**
 * Emit a log line to stderr if @p level passes the filter. Safe to
 * call from any thread: each line is written with a single fwrite, so
 * concurrent lines never splice mid-character.
 */
void log(LogLevel level, const std::string &msg);

/** User-facing error: print and exit(1). */
[[noreturn]] void fatal(const std::string &msg);

/** Internal invariant violation: print and abort(). */
[[noreturn]] void panic(const std::string &msg);

namespace detail {

template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

} // namespace vega

#define VEGA_CHECK(cond, ...)                                               \
    do {                                                                    \
        if (!(cond))                                                        \
            ::vega::panic(::vega::detail::concat(                           \
                "check failed: " #cond " at ", __FILE__, ":", __LINE__,     \
                ": ", ##__VA_ARGS__));                                      \
    } while (0)

#define VEGA_REQUIRE(cond, ...)                                             \
    do {                                                                    \
        if (!(cond))                                                        \
            ::vega::fatal(::vega::detail::concat(__VA_ARGS__));             \
    } while (0)
