/**
 * @file
 * Minimal logging and error-checking utilities.
 *
 * Follows the gem5 fatal/panic distinction: fatal() is a user error (bad
 * configuration, invalid input) and exits cleanly; panic() is an internal
 * invariant violation and aborts.
 */
#pragma once

#include <sstream>
#include <string>

namespace vega {

enum class LogLevel { Debug, Info, Warn, Error };

/** Set the minimum level that log() actually emits (default Info). */
void set_log_level(LogLevel level);
LogLevel log_level();

/** Emit a log line to stderr if @p level passes the filter. */
void log(LogLevel level, const std::string &msg);

/** User-facing error: print and exit(1). */
[[noreturn]] void fatal(const std::string &msg);

/** Internal invariant violation: print and abort(). */
[[noreturn]] void panic(const std::string &msg);

namespace detail {

template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

} // namespace vega

#define VEGA_CHECK(cond, ...)                                               \
    do {                                                                    \
        if (!(cond))                                                        \
            ::vega::panic(::vega::detail::concat(                           \
                "check failed: " #cond " at ", __FILE__, ":", __LINE__,     \
                ": ", ##__VA_ARGS__));                                      \
    } while (0)

#define VEGA_REQUIRE(cond, ...)                                             \
    do {                                                                    \
        if (!(cond))                                                        \
            ::vega::fatal(::vega::detail::concat(__VA_ARGS__));             \
    } while (0)
