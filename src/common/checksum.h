/**
 * @file
 * CRC32C (Castagnoli) — the end-to-end integrity primitive.
 *
 * Campaign journals and their aggregator follow the DAOS discipline:
 * every record carries a checksum computed where the data is produced
 * and verified where it is consumed, so a bit flipped anywhere in
 * between — a torn write, aging storage, or the very wearout faults
 * this project hunts — is *detected*, never silently merged into
 * fleet statistics. CRC32C is the conventional choice for this job
 * (iSCSI, ext4, DAOS): 32 bits catch any single burst ≤ 32 bits and
 * all odd-bit-count flips, and the slice-by-8 table walk keeps the
 * cost far below the I/O it protects.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace vega {

/**
 * Incremental CRC32C. update() in any chunking yields the same value
 * as one pass over the concatenation; value() may be read at any
 * point without disturbing the stream.
 */
class Crc32c
{
  public:
    void update(const void *data, size_t size);
    void update(const std::string &s) { update(s.data(), s.size()); }

    /** Finalized checksum of everything fed so far. */
    uint32_t value() const { return ~state_; }

    void reset() { state_ = 0xffffffffu; }

  private:
    uint32_t state_ = 0xffffffffu;
};

/** One-shot CRC32C of a buffer. */
uint32_t crc32c(const void *data, size_t size);

inline uint32_t
crc32c(const std::string &s)
{
    return crc32c(s.data(), s.size());
}

/** Fixed-width lowercase rendering, e.g. 0xe3069283 -> "e3069283". */
std::string crc32c_hex(uint32_t crc);

/** Inverse of crc32c_hex; false unless exactly 8 hex digits. */
bool parse_crc32c_hex(const std::string &hex, uint32_t &out);

} // namespace vega
