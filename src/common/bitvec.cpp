#include "common/bitvec.h"

#include <cassert>
#include <stdexcept>

namespace vega {

BitVec::BitVec(size_t width)
    : width_(width), words_(words_for(width), 0)
{
}

BitVec::BitVec(size_t width, uint64_t value)
    : width_(width), words_(words_for(width), 0)
{
    if (!words_.empty())
        words_[0] = value;
    mask_top();
}

BitVec
BitVec::from_binary(const std::string &text)
{
    size_t start = 0;
    if (text.rfind("0b", 0) == 0)
        start = 2;
    size_t n = text.size() - start;
    BitVec v(n);
    for (size_t i = 0; i < n; ++i) {
        char c = text[start + i];
        if (c != '0' && c != '1')
            throw std::invalid_argument("BitVec::from_binary: bad digit");
        // MSB first in text.
        v.set(n - 1 - i, c == '1');
    }
    return v;
}

bool
BitVec::get(size_t i) const
{
    assert(i < width_);
    return (words_[i / 64] >> (i % 64)) & 1;
}

void
BitVec::set(size_t i, bool v)
{
    assert(i < width_);
    uint64_t mask = uint64_t(1) << (i % 64);
    if (v)
        words_[i / 64] |= mask;
    else
        words_[i / 64] &= ~mask;
}

uint64_t
BitVec::to_u64() const
{
    return words_.empty() ? 0 : words_[0];
}

BitVec
BitVec::slice(size_t lo, size_t len) const
{
    assert(lo + len <= width_);
    BitVec out(len);
    for (size_t i = 0; i < len; ++i)
        out.set(i, get(lo + i));
    return out;
}

void
BitVec::splice(size_t lo, const BitVec &src)
{
    assert(lo + src.width() <= width_);
    for (size_t i = 0; i < src.width(); ++i)
        set(lo + i, src.get(i));
}

size_t
BitVec::popcount() const
{
    size_t n = 0;
    for (uint64_t w : words_)
        n += __builtin_popcountll(w);
    return n;
}

std::string
BitVec::to_binary() const
{
    std::string s;
    s.reserve(width_);
    for (size_t i = 0; i < width_; ++i)
        s.push_back(get(width_ - 1 - i) ? '1' : '0');
    return s;
}

bool
BitVec::operator==(const BitVec &o) const
{
    return width_ == o.width_ && words_ == o.words_;
}

void
BitVec::mask_top()
{
    if (width_ % 64 != 0 && !words_.empty())
        words_.back() &= (uint64_t(1) << (width_ % 64)) - 1;
}

} // namespace vega
