#include "runtime/c_api.h"

#include <memory>
#include <new>

#include "cpu/alu_ops.h"
#include "runtime/aging_library.h"

using vega::AluOp;
using vega::ModuleKind;
using vega::runtime::AgingLibrary;
using vega::runtime::AgingLibraryOptions;
using vega::runtime::Detection;
using vega::runtime::GoldenEngine;
using vega::runtime::ModuleStep;
using vega::runtime::SchedulePolicy;
using vega::runtime::TestCase;

struct vega_library
{
    std::unique_ptr<AgingLibrary> lib;
    GoldenEngine engine;
};

namespace {

int
to_code(Detection d)
{
    switch (d) {
      case Detection::None:         return VEGA_OK;
      case Detection::Mismatch:     return VEGA_MISMATCH;
      case Detection::Stall:        return VEGA_STALL;
      case Detection::TagAnomaly:   return VEGA_TAG_ANOMALY;
      case Detection::WrongAddress: return VEGA_WRONG_ADDRESS;
    }
    return VEGA_MISMATCH;
}

TestCase
make_demo_test(const char *name, AluOp op, uint32_t a, uint32_t b)
{
    TestCase tc;
    tc.name = name;
    tc.module = ModuleKind::Alu32;
    tc.stimulus = {ModuleStep{a, b, uint32_t(op), true, false}};
    tc.checks = {{0, vega::alu_compute(op, a, b), false}};
    vega::runtime::finalize_test_case(tc);
    return tc;
}

} // namespace

vega_library *
vega_library_create_demo(int policy, double probability, uint64_t seed)
{
    if (policy < VEGA_SEQUENTIAL || policy > VEGA_PROBABILISTIC)
        return nullptr;
    if (probability <= 0.0 || probability > 1.0)
        return nullptr;

    std::vector<TestCase> suite;
    suite.push_back(make_demo_test("demo_add", AluOp::Add, 0xdeadbeef,
                                   0x01020304));
    suite.push_back(make_demo_test("demo_sub", AluOp::Sub, 0x80000000,
                                   0x7fffffff));
    suite.push_back(make_demo_test("demo_sll", AluOp::Sll, 0x1, 31));
    suite.push_back(make_demo_test("demo_xor", AluOp::Xor, 0xaaaaaaaa,
                                   0x55555555));

    AgingLibraryOptions options;
    options.policy = SchedulePolicy(policy);
    options.probability = probability;
    options.seed = seed;

    auto *handle = new (std::nothrow) vega_library;
    if (!handle)
        return nullptr;
    handle->lib =
        std::make_unique<AgingLibrary>(std::move(suite), options);
    return handle;
}

void
vega_library_destroy(vega_library *lib)
{
    delete lib;
}

size_t
vega_library_num_tests(const vega_library *lib)
{
    return lib ? lib->lib->num_tests() : 0;
}

uint64_t
vega_library_suite_cycles(const vega_library *lib)
{
    return lib ? lib->lib->suite_cycles() : 0;
}

int
vega_library_run_next(vega_library *lib)
{
    if (!lib)
        return VEGA_MISMATCH;
    return to_code(lib->lib->run_next(lib->engine));
}

int
vega_library_run_all(vega_library *lib)
{
    if (!lib)
        return VEGA_MISMATCH;
    return to_code(lib->lib->run_all(lib->engine));
}

int
vega_library_policy(const vega_library *lib)
{
    if (!lib)
        return -1;
    return int(lib->lib->options().policy);
}

const char *
vega_detection_name(int code)
{
    switch (code) {
      case VEGA_OK:            return "ok";
      case VEGA_MISMATCH:      return "mismatch";
      case VEGA_STALL:         return "stall";
      case VEGA_TAG_ANOMALY:   return "tag_anomaly";
      case VEGA_WRONG_ADDRESS: return "wrong_address";
    }
    return "invalid";
}

const char *
vega_mem_fault_name(int kind)
{
    switch (kind) {
      case VEGA_MEM_FAULT_NONE:      return "none";
      case VEGA_MEM_WRONG_ROW_READ:  return "wrong_row_read";
      case VEGA_MEM_WRONG_ROW_WRITE: return "wrong_row_write";
      case VEGA_MEM_MULTI_SELECT:    return "multi_select";
      case VEGA_MEM_NO_SELECT:       return "no_select";
    }
    return "invalid";
}

const char *
vega_policy_name(int policy)
{
    switch (policy) {
      case VEGA_SEQUENTIAL:    return "sequential";
      case VEGA_RANDOM:        return "random";
      case VEGA_PROBABILISTIC: return "probabilistic";
    }
    return "invalid";
}
