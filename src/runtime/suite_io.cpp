#include "runtime/suite_io.h"

#include <sstream>
#include <stdexcept>

namespace vega::runtime {

namespace {

const char *
module_token(ModuleKind kind)
{
    switch (kind) {
      case ModuleKind::Adder2: return "adder2";
      case ModuleKind::Alu32:  return "alu32";
      case ModuleKind::Fpu32:  return "fpu32";
      case ModuleKind::Mdu32:  return "mdu32";
    }
    return "?";
}

ModuleKind
parse_module(const std::string &token)
{
    if (token == "adder2")
        return ModuleKind::Adder2;
    if (token == "alu32")
        return ModuleKind::Alu32;
    if (token == "fpu32")
        return ModuleKind::Fpu32;
    if (token == "mdu32")
        return ModuleKind::Mdu32;
    throw std::runtime_error("suite_io: unknown module '" + token + "'");
}

} // namespace

std::string
serialize_suite(const std::vector<TestCase> &suite)
{
    std::ostringstream os;
    os << "# vega test suite v1\n";
    for (const TestCase &t : suite) {
        os << "testcase " << module_token(t.module) << " " << t.pair_index
           << " " << (t.name.empty() ? "-" : t.name) << " "
           << (t.config.empty() ? "-" : t.config) << "\n";
        for (const ModuleStep &s : t.stimulus)
            os << "  step " << s.a << " " << s.b << " " << s.op << " "
               << (s.valid ? 1 : 0) << " " << (s.clear ? 1 : 0) << "\n";
        for (const ResultCheck &c : t.checks)
            os << "  check " << c.step << " " << c.expected << " "
               << (c.to_xreg ? 1 : 0) << "\n";
        if (t.check_final_flags)
            os << "  flags " << unsigned(t.expected_flags) << "\n";
        os << "end\n";
    }
    return os.str();
}

std::vector<TestCase>
deserialize_suite(const std::string &text)
{
    std::vector<TestCase> suite;
    std::istringstream is(text);
    std::string line;
    TestCase current;
    bool in_test = false;
    size_t line_no = 0;

    auto fail = [&](const std::string &msg) {
        throw std::runtime_error("suite_io: line " +
                                 std::to_string(line_no) + ": " + msg);
    };

    while (std::getline(is, line)) {
        ++line_no;
        std::istringstream ls(line);
        std::string word;
        if (!(ls >> word) || word[0] == '#')
            continue;
        if (word == "testcase") {
            if (in_test)
                fail("nested testcase");
            std::string module, name, config;
            int pair = -1;
            if (!(ls >> module >> pair >> name >> config))
                fail("malformed testcase header");
            current = TestCase{};
            current.module = parse_module(module);
            current.pair_index = pair;
            current.name = name == "-" ? "" : name;
            current.config = config == "-" ? "" : config;
            in_test = true;
        } else if (word == "step") {
            if (!in_test)
                fail("step outside testcase");
            ModuleStep s;
            unsigned valid = 0, clear = 0;
            if (!(ls >> s.a >> s.b >> s.op >> valid >> clear))
                fail("malformed step");
            s.valid = valid != 0;
            s.clear = clear != 0;
            current.stimulus.push_back(s);
        } else if (word == "check") {
            if (!in_test)
                fail("check outside testcase");
            ResultCheck c;
            unsigned to_x = 0;
            if (!(ls >> c.step >> c.expected >> to_x))
                fail("malformed check");
            c.to_xreg = to_x != 0;
            current.checks.push_back(c);
        } else if (word == "flags") {
            if (!in_test)
                fail("flags outside testcase");
            unsigned flags = 0;
            if (!(ls >> flags))
                fail("malformed flags");
            current.check_final_flags = true;
            current.expected_flags = uint8_t(flags);
        } else if (word == "end") {
            if (!in_test)
                fail("end outside testcase");
            finalize_test_case(current);
            suite.push_back(std::move(current));
            in_test = false;
        } else {
            fail("unknown directive '" + word + "'");
        }
    }
    if (in_test)
        fail("unterminated testcase");
    return suite;
}

} // namespace vega::runtime
