#include "runtime/suite_io.h"

#include <sstream>
#include <stdexcept>

namespace vega::runtime {

namespace {

const char *
module_token(ModuleKind kind)
{
    switch (kind) {
      case ModuleKind::Adder2:   return "adder2";
      case ModuleKind::Alu32:    return "alu32";
      case ModuleKind::Fpu32:    return "fpu32";
      case ModuleKind::Mdu32:    return "mdu32";
      case ModuleKind::MemDec16: return "memdec16";
    }
    return "?";
}

bool
parse_module(const std::string &token, ModuleKind &out)
{
    if (token == "adder2")
        out = ModuleKind::Adder2;
    else if (token == "alu32")
        out = ModuleKind::Alu32;
    else if (token == "fpu32")
        out = ModuleKind::Fpu32;
    else if (token == "mdu32")
        out = ModuleKind::Mdu32;
    else if (token == "memdec16")
        out = ModuleKind::MemDec16;
    else
        return false;
    return true;
}

} // namespace

std::string
serialize_suite(const std::vector<TestCase> &suite)
{
    std::ostringstream os;
    os << "# vega test suite v1\n";
    for (const TestCase &t : suite) {
        os << "testcase " << module_token(t.module) << " " << t.pair_index
           << " " << (t.name.empty() ? "-" : t.name) << " "
           << (t.config.empty() ? "-" : t.config) << "\n";
        for (const ModuleStep &s : t.stimulus)
            os << "  step " << s.a << " " << s.b << " " << s.op << " "
               << (s.valid ? 1 : 0) << " " << (s.clear ? 1 : 0) << "\n";
        for (const ResultCheck &c : t.checks)
            os << "  check " << c.step << " " << c.expected << " "
               << (c.to_xreg ? 1 : 0) << "\n";
        if (t.check_final_flags)
            os << "  flags " << unsigned(t.expected_flags) << "\n";
        os << "end\n";
    }
    return os.str();
}

Expected<std::vector<TestCase>>
try_deserialize_suite(const std::string &text)
{
    std::vector<TestCase> suite;
    std::istringstream is(text);
    std::string line;
    TestCase current;
    bool in_test = false;
    size_t line_no = 0;

    auto fail = [&](const std::string &msg) {
        return make_error(ErrorCode::ParseError,
                          "line " + std::to_string(line_no) + ": " + msg);
    };

    while (std::getline(is, line)) {
        ++line_no;
        std::istringstream ls(line);
        std::string word;
        if (!(ls >> word) || word[0] == '#')
            continue;
        if (word == "testcase") {
            if (in_test)
                return fail("nested testcase");
            std::string module, name, config;
            long long pair = -1;
            if (!(ls >> module >> pair >> name >> config))
                return fail("malformed testcase header");
            current = TestCase{};
            if (!parse_module(module, current.module))
                return fail("unknown module '" + module + "'");
            current.pair_index = int(pair);
            current.name = name == "-" ? "" : name;
            current.config = config == "-" ? "" : config;
            in_test = true;
        } else if (word == "step") {
            if (!in_test)
                return fail("step outside testcase");
            size_t cap = current.module == ModuleKind::MemDec16
                             ? kMaxMemTestSteps
                             : kMaxTestSteps;
            if (current.stimulus.size() >= cap)
                return fail("more than " + std::to_string(cap) +
                            " steps");
            ModuleStep s;
            unsigned valid = 0, clear = 0;
            if (!(ls >> s.a >> s.b >> s.op >> valid >> clear))
                return fail("malformed step");
            s.valid = valid != 0;
            s.clear = clear != 0;
            current.stimulus.push_back(s);
        } else if (word == "check") {
            if (!in_test)
                return fail("check outside testcase");
            ResultCheck c;
            unsigned to_x = 0;
            if (!(ls >> c.step >> c.expected >> to_x))
                return fail("malformed check");
            c.to_xreg = to_x != 0;
            current.checks.push_back(c);
        } else if (word == "flags") {
            if (!in_test)
                return fail("flags outside testcase");
            unsigned flags = 0;
            if (!(ls >> flags))
                return fail("malformed flags");
            current.check_final_flags = true;
            current.expected_flags = uint8_t(flags);
        } else if (word == "end") {
            if (!in_test)
                return fail("end outside testcase");
            Expected<void> fin = try_finalize_test_case(current);
            if (!fin)
                return make_error(fin.error().code,
                                  "line " + std::to_string(line_no) +
                                      ": " + fin.error().context);
            suite.push_back(std::move(current));
            in_test = false;
        } else {
            return fail("unknown directive '" + word + "'");
        }
    }
    if (in_test) {
        ++line_no;
        return fail("unterminated testcase '" + current.name + "'");
    }
    return suite;
}

std::vector<TestCase>
deserialize_suite(const std::string &text)
{
    Expected<std::vector<TestCase>> suite = try_deserialize_suite(text);
    if (!suite)
        throw std::runtime_error("suite_io: " +
                                 suite.error().to_string());
    return std::move(suite).value();
}

} // namespace vega::runtime
