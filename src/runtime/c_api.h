/**
 * @file
 * C-language wrapper around the aging library (§3.4.1's
 * "wrappers compatible with various programming languages").
 *
 * The handle-based API carries no C++ types across the boundary, so it
 * binds directly from C, Rust (via bindgen), Python (ctypes), etc.
 */
#pragma once

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

typedef struct vega_library vega_library;

/** Detection codes mirrored from vega::runtime::Detection. */
enum vega_detection {
    VEGA_OK = 0,
    VEGA_MISMATCH = 1,
    VEGA_STALL = 2,
    VEGA_TAG_ANOMALY = 3,
    VEGA_WRONG_ADDRESS = 4,
};

/** Memory-path fault classes mirrored from vega::mem::MemFaultKind. */
enum vega_mem_fault {
    VEGA_MEM_FAULT_NONE = 0,
    VEGA_MEM_WRONG_ROW_READ = 1,
    VEGA_MEM_WRONG_ROW_WRITE = 2,
    VEGA_MEM_MULTI_SELECT = 3,
    VEGA_MEM_NO_SELECT = 4,
};

/** Scheduling policies mirrored from vega::runtime::SchedulePolicy. */
enum vega_policy {
    VEGA_SEQUENTIAL = 0,
    VEGA_RANDOM = 1,
    VEGA_PROBABILISTIC = 2,
};

/**
 * Build the demo library: runs the full Vega workflow on the bundled
 * ALU model and packages the resulting suite. Returns NULL on failure.
 * (Production deployments construct the library from a shipped suite;
 * this entry point exists so language bindings can be exercised
 * end-to-end without C++.)
 */
vega_library *vega_library_create_demo(int policy, double probability,
                                       uint64_t seed);

void vega_library_destroy(vega_library *lib);

size_t vega_library_num_tests(const vega_library *lib);
uint64_t vega_library_suite_cycles(const vega_library *lib);

/** Run the next scheduled test on the healthy reference engine. */
int vega_library_run_next(vega_library *lib);
/** Run one full pass; returns the first non-OK detection code. */
int vega_library_run_all(vega_library *lib);

/** The vega_policy the handle was created with, or -1 for NULL. */
int vega_library_policy(const vega_library *lib);

/**
 * Stable human-readable names for the enum codes, for bindings that
 * log without re-declaring the tables ("ok", "mismatch", "stall",
 * "tag_anomaly", "wrong_address"; "sequential", "random",
 * "probabilistic"; "none", "wrong_row_read", "wrong_row_write",
 * "multi_select", "no_select"). Unknown codes come back as "invalid",
 * never NULL.
 */
const char *vega_detection_name(int code);
const char *vega_policy_name(int policy);
const char *vega_mem_fault_name(int kind);

#ifdef __cplusplus
} // extern "C"
#endif
