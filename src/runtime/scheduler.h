/**
 * @file
 * Test scheduling policies for the software aging library (§3.4.1).
 *
 * The generated library supports running its test cases sequentially, in
 * a random order (reshuffled each epoch so every test still runs), or
 * probabilistically (each slot fires with probability p, the knob
 * profile-guided integration uses to cap overhead, §3.4.2).
 */
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/rng.h"

namespace vega::runtime {

enum class SchedulePolicy { Sequential, Random, Probabilistic };

const char *schedule_policy_name(SchedulePolicy p);

class Scheduler
{
  public:
    /**
     * @param probability dispatch probability for the probabilistic
     *        policy, clamped into [0, 1] (NaN ⇒ 0). p = 0 never
     *        dispatches; p = 1 dispatches every slot, matching the
     *        sequential policy's counts.
     */
    Scheduler(size_t num_tests, SchedulePolicy policy,
              double probability = 1.0, uint64_t seed = 1);

    /**
     * Index of the test to run in this slot, or nullopt when the
     * probabilistic policy skips the slot.
     */
    std::optional<size_t> next();

    /** Slots elapsed (including skipped ones). */
    uint64_t slots() const { return slots_; }
    /** Tests actually dispatched. */
    uint64_t dispatched() const { return dispatched_; }

  private:
    void reshuffle();

    size_t n_;
    SchedulePolicy policy_;
    double probability_;
    Rng rng_;
    std::vector<size_t> order_;
    size_t cursor_ = 0;
    uint64_t slots_ = 0;
    uint64_t dispatched_ = 0;
};

} // namespace vega::runtime
