#include "runtime/test_case.h"

#include <map>
#include <set>

#include "common/logging.h"
#include "cpu/alu_ops.h"
#include "cpu/mdu_ops.h"
#include "cpu/assembler.h"
#include "cpu/iss.h"
#include "cpu/softfp.h"
#include "workloads/kernels.h"

namespace vega::runtime {

const char *
detection_name(Detection d)
{
    switch (d) {
      case Detection::None:         return "none";
      case Detection::Mismatch:     return "mismatch";
      case Detection::Stall:        return "stall";
      case Detection::TagAnomaly:   return "tag-anomaly";
      case Detection::WrongAddress: return "wrong-address";
    }
    return "?";
}

namespace {

/**
 * Register plan for generated blocks:
 *   x5..x18   operand pool (deduplicated immediates)
 *   x19..x26  per-step integer results (ALU results / FPU compare bits)
 *   x28, x29  compare scratch
 *   x31       fail flag
 *   f1..f14   FP operand pool
 *   f20..f27  FP results
 */
constexpr cpu::Reg kOperandBase = 5;
constexpr int kOperandMax = 14;
constexpr cpu::Reg kResultBase = 19;
constexpr int kResultMax = 8;
constexpr cpu::Reg kScratchA = 28;
constexpr cpu::Reg kScratchB = 29;
constexpr cpu::Reg kFailFlag = 31;
constexpr cpu::FReg kFOperandBase = 1;
constexpr cpu::FReg kFResultBase = 20;

/** Dedup operand values into the pool; emits loads on first use. */
class OperandPool
{
  public:
    explicit OperandPool(cpu::Asm &a, bool fp) : a_(a), fp_(fp) {}

    uint8_t
    reg_for(uint32_t value)
    {
        auto it = map_.find(value);
        if (it != map_.end())
            return it->second;
        VEGA_CHECK(next_ < kOperandMax, "operand pool exhausted");
        uint8_t x_reg = kOperandBase + next_;
        if (fp_) {
            uint8_t f_reg = kFOperandBase + next_;
            a_.li(kScratchA, value);
            a_.fmv_w_x(f_reg, kScratchA);
            map_[value] = f_reg;
            ++next_;
            return f_reg;
        }
        a_.li(x_reg, value);
        map_[value] = x_reg;
        ++next_;
        return x_reg;
    }

  private:
    cpu::Asm &a_;
    bool fp_;
    std::map<uint32_t, uint8_t> map_;
    int next_ = 0;
};

void
build_alu_program(TestCase &tc)
{
    cpu::Asm a;
    a.addi(kFailFlag, 0, 0);
    OperandPool pool(a, false);

    // Preload every distinct operand so the op burst runs back-to-back.
    std::vector<std::pair<uint8_t, uint8_t>> op_regs;
    for (const ModuleStep &s : tc.stimulus)
        op_regs.emplace_back(pool.reg_for(s.a), pool.reg_for(s.b));

    VEGA_CHECK(tc.stimulus.size() <= kResultMax, "too many steps");
    for (size_t i = 0; i < tc.stimulus.size(); ++i) {
        auto [ra, rb] = op_regs[i];
        cpu::Reg rd = kResultBase + cpu::Reg(i);
        auto op = AluOp(tc.stimulus[i].op);
        switch (op) {
          case AluOp::Add: a.add(rd, ra, rb); break;
          case AluOp::Sub: a.sub(rd, ra, rb); break;
          case AluOp::Sll: a.sll(rd, ra, rb); break;
          case AluOp::Slt: a.slt(rd, ra, rb); break;
          case AluOp::Sltu: a.sltu(rd, ra, rb); break;
          case AluOp::Xor: a.xor_(rd, ra, rb); break;
          case AluOp::Srl: a.srl(rd, ra, rb); break;
          case AluOp::Sra: a.sra(rd, ra, rb); break;
          case AluOp::Or: a.or_(rd, ra, rb); break;
          case AluOp::And: a.and_(rd, ra, rb); break;
        }
    }

    for (const ResultCheck &c : tc.checks) {
        a.li(kScratchA, c.expected);
        a.bne(kResultBase + cpu::Reg(c.step), kScratchA, "fail");
    }
    a.j("done");
    a.label("fail");
    a.addi(kFailFlag, 0, 1);
    a.label("done");
    a.halt();
    tc.program = a.finish();
}

void
build_fpu_program(TestCase &tc)
{
    cpu::Asm a;
    a.addi(kFailFlag, 0, 0);
    // Deterministic flag baseline.
    a.clear_fflags();

    OperandPool pool(a, true);
    std::vector<std::pair<uint8_t, uint8_t>> op_regs(tc.stimulus.size());
    for (size_t i = 0; i < tc.stimulus.size(); ++i)
        if (tc.stimulus[i].valid)
            op_regs[i] = {pool.reg_for(tc.stimulus[i].a),
                          pool.reg_for(tc.stimulus[i].b)};

    // Map step -> result register (FP or integer).
    std::vector<uint8_t> result_reg(tc.stimulus.size(), 0);
    int n_f = 0, n_x = 0;
    for (size_t i = 0; i < tc.stimulus.size(); ++i) {
        if (!tc.stimulus[i].valid)
            continue;
        auto op = fp::FpuOp(tc.stimulus[i].op);
        bool to_x = op == fp::FpuOp::Eq || op == fp::FpuOp::Lt ||
                    op == fp::FpuOp::Le;
        result_reg[i] = to_x ? kResultBase + uint8_t(n_x++)
                             : kFResultBase + uint8_t(n_f++);
        VEGA_CHECK(n_x <= kResultMax && n_f <= kResultMax,
                   "result registers exhausted");
    }

    // The trace burst: one instruction per trace cycle, preserving the
    // exact valid/clear timing the cover trace requires.
    for (size_t i = 0; i < tc.stimulus.size(); ++i) {
        const ModuleStep &s = tc.stimulus[i];
        if (s.clear) {
            a.clear_fflags();
            continue;
        }
        if (!s.valid) {
            a.nop();
            continue;
        }
        auto [ra, rb] = op_regs[i];
        uint8_t rd = result_reg[i];
        switch (fp::FpuOp(s.op)) {
          case fp::FpuOp::Add: a.fadd_s(rd, ra, rb); break;
          case fp::FpuOp::Sub: a.fsub_s(rd, ra, rb); break;
          case fp::FpuOp::Mul: a.fmul_s(rd, ra, rb); break;
          case fp::FpuOp::Eq: a.feq_s(rd, ra, rb); break;
          case fp::FpuOp::Lt: a.flt_s(rd, ra, rb); break;
          case fp::FpuOp::Le: a.fle_s(rd, ra, rb); break;
          case fp::FpuOp::Min: a.fmin_s(rd, ra, rb); break;
          case fp::FpuOp::Max: a.fmax_s(rd, ra, rb); break;
        }
    }

    for (const ResultCheck &c : tc.checks) {
        uint8_t rd = result_reg[c.step];
        a.li(kScratchB, c.expected);
        if (c.to_xreg) {
            a.bne(rd, kScratchB, "fail");
        } else {
            a.fmv_x_w(kScratchA, rd);
            a.bne(kScratchA, kScratchB, "fail");
        }
    }
    if (tc.check_final_flags) {
        a.csrr_fflags(kScratchA);
        a.li(kScratchB, tc.expected_flags);
        a.bne(kScratchA, kScratchB, "fail");
    }
    a.j("done");
    a.label("fail");
    a.addi(kFailFlag, 0, 1);
    a.label("done");
    a.halt();
    tc.program = a.finish();
}

void
build_mdu_program(TestCase &tc)
{
    cpu::Asm a;
    a.addi(kFailFlag, 0, 0);
    OperandPool pool(a, false);

    std::vector<std::pair<uint8_t, uint8_t>> op_regs;
    for (const ModuleStep &s : tc.stimulus)
        op_regs.emplace_back(pool.reg_for(s.a), pool.reg_for(s.b));

    VEGA_CHECK(tc.stimulus.size() <= kResultMax, "too many steps");
    for (size_t i = 0; i < tc.stimulus.size(); ++i) {
        auto [ra, rb] = op_regs[i];
        cpu::Reg rd = kResultBase + cpu::Reg(i);
        switch (MduOp(tc.stimulus[i].op)) {
          case MduOp::Mul: a.mul(rd, ra, rb); break;
          case MduOp::Mulh: a.mulh(rd, ra, rb); break;
          case MduOp::Mulhu: a.mulhu(rd, ra, rb); break;
        }
    }

    for (const ResultCheck &c : tc.checks) {
        a.li(kScratchA, c.expected);
        a.bne(kResultBase + cpu::Reg(c.step), kScratchA, "fail");
    }
    a.j("done");
    a.label("fail");
    a.addi(kFailFlag, 0, 1);
    a.label("done");
    a.halt();
    tc.program = a.finish();
}

/**
 * Compile a march-encoded stimulus (see kMaxMemTestSteps) into a
 * straight-line block over the memory substrate's word cells. Cells
 * live at kDataBase + 4*row, which the 16-row macro aliases back to
 * row (kDataBase is 4096-aligned). Registers: x5/x6 hold the solid
 * 0 / all-ones backgrounds, x7 the cell base, x28 the read scratch.
 */
void
build_mem_program(TestCase &tc)
{
    constexpr cpu::Reg kBg0 = 5, kBg1 = 6, kBase = 7;
    cpu::Asm a;
    a.addi(kFailFlag, 0, 0);
    a.li(kBg0, 0);
    a.li(kBg1, 0xffffffffu);
    a.li(kBase, workloads::kDataBase);
    for (const ModuleStep &s : tc.stimulus) {
        int32_t off = int32_t(s.a) * 4;
        switch (s.op) {
          case 0: // r0
            a.lw(kScratchA, kBase, off);
            a.bne(kScratchA, kBg0, "fail");
            break;
          case 1: // r1
            a.lw(kScratchA, kBase, off);
            a.bne(kScratchA, kBg1, "fail");
            break;
          case 2: // w0
            a.sw(kBg0, kBase, off);
            break;
          case 3: // w1
            a.sw(kBg1, kBase, off);
            break;
        }
    }
    a.j("done");
    a.label("fail");
    a.addi(kFailFlag, 0, 1);
    a.label("done");
    a.halt();
    tc.program = a.finish();
}

// The public limits must match the register plan the builders assume.
static_assert(kMaxTestSteps == size_t(kResultMax));
static_assert(kMaxDistinctOperands == size_t(kOperandMax));

} // namespace

Expected<void>
validate_test_case(const TestCase &tc)
{
    auto err = [&](const std::string &msg) {
        return make_error(ErrorCode::ValidationError,
                          "test '" + tc.name + "': " + msg);
    };

    if (tc.module == ModuleKind::MemDec16) {
        // March encoding: a = row, op = march operation, checks unused.
        if (tc.stimulus.size() > kMaxMemTestSteps)
            return err("too many march operations (" +
                       std::to_string(tc.stimulus.size()) + " > " +
                       std::to_string(kMaxMemTestSteps) + ")");
        for (size_t i = 0; i < tc.stimulus.size(); ++i) {
            const ModuleStep &s = tc.stimulus[i];
            if (s.op >= kNumMarchOps)
                return err("step " + std::to_string(i) + " march op " +
                           std::to_string(s.op) + " out of range (< " +
                           std::to_string(kNumMarchOps) + ")");
            if (s.a >= kMemTestRows)
                return err("step " + std::to_string(i) + " row " +
                           std::to_string(s.a) + " out of range (< " +
                           std::to_string(kMemTestRows) + ")");
        }
        if (!tc.checks.empty())
            return err("march tests self-check; checks must be empty");
        return {};
    }

    uint32_t num_ops = 0;
    bool is_fpu = false;
    switch (tc.module) {
      case ModuleKind::Alu32: num_ops = kNumAluOps; break;
      case ModuleKind::Mdu32: num_ops = kNumMduOps; break;
      case ModuleKind::Fpu32:
        num_ops = 8; // FpuOp::Add .. FpuOp::Max
        is_fpu = true;
        break;
      default:
        return err("module is not a compilable functional unit");
    }

    if (tc.stimulus.size() > kMaxTestSteps)
        return err("too many steps (" +
                   std::to_string(tc.stimulus.size()) + " > " +
                   std::to_string(kMaxTestSteps) + ")");

    std::set<uint32_t> operands;
    for (size_t i = 0; i < tc.stimulus.size(); ++i) {
        const ModuleStep &s = tc.stimulus[i];
        if (is_fpu && !s.valid)
            continue; // compiled as a nop; operands and op unused
        if (s.op >= num_ops)
            return err("step " + std::to_string(i) + " op " +
                       std::to_string(s.op) + " out of range (< " +
                       std::to_string(num_ops) + ")");
        operands.insert(s.a);
        operands.insert(s.b);
    }
    if (operands.size() > kMaxDistinctOperands)
        return err("too many distinct operands (" +
                   std::to_string(operands.size()) + " > " +
                   std::to_string(kMaxDistinctOperands) + ")");

    for (const ResultCheck &c : tc.checks) {
        if (c.step >= tc.stimulus.size())
            return err("check references step " +
                       std::to_string(c.step) + " of " +
                       std::to_string(tc.stimulus.size()));
        if (is_fpu && !tc.stimulus[c.step].valid)
            return err("check references idle step " +
                       std::to_string(c.step));
    }
    return {};
}

Expected<void>
try_finalize_test_case(TestCase &tc)
{
    Expected<void> valid = validate_test_case(tc);
    if (!valid)
        return valid;

    switch (tc.module) {
      case ModuleKind::Alu32:
        build_alu_program(tc);
        break;
      case ModuleKind::Fpu32:
        build_fpu_program(tc);
        break;
      case ModuleKind::Mdu32:
        build_mdu_program(tc);
        break;
      case ModuleKind::MemDec16:
        build_mem_program(tc);
        break;
      default:
        return make_error(ErrorCode::ValidationError,
                          "unsupported module");
    }

    cpu::Iss iss(tc.program);
    auto status = iss.run();
    if (status != cpu::Iss::Status::Halted)
        return make_error(ErrorCode::ValidationError,
                          "test '" + tc.name +
                              "' did not halt on the golden model");
    if (iss.reg(31) != 0)
        return make_error(ErrorCode::ValidationError,
                          "test '" + tc.name +
                              "' fails on the golden model");
    tc.cycle_cost = iss.cycles();
    return {};
}

void
finalize_test_case(TestCase &tc)
{
    Expected<void> ok = try_finalize_test_case(tc);
    VEGA_CHECK(ok.ok(), "finalize_test_case: ", ok.error().context);
}

} // namespace vega::runtime
