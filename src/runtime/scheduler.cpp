#include "runtime/scheduler.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace vega::runtime {

const char *
schedule_policy_name(SchedulePolicy p)
{
    switch (p) {
      case SchedulePolicy::Sequential:    return "sequential";
      case SchedulePolicy::Random:        return "random";
      case SchedulePolicy::Probabilistic: return "probabilistic";
    }
    return "?";
}

Scheduler::Scheduler(size_t num_tests, SchedulePolicy policy,
                     double probability, uint64_t seed)
    : n_(num_tests), policy_(policy), probability_(probability), rng_(seed)
{
    VEGA_CHECK(n_ > 0, "scheduler needs at least one test");
    if (std::isnan(probability_))
        probability_ = 0.0;
    probability_ = std::clamp(probability_, 0.0, 1.0);
    order_.resize(n_);
    std::iota(order_.begin(), order_.end(), size_t(0));
    if (policy_ == SchedulePolicy::Random)
        reshuffle();
}

void
Scheduler::reshuffle()
{
    for (size_t i = n_; i > 1; --i)
        std::swap(order_[i - 1], order_[rng_.below(i)]);
}

std::optional<size_t>
Scheduler::next()
{
    ++slots_;
    if (policy_ == SchedulePolicy::Probabilistic &&
        !rng_.chance(probability_))
        return std::nullopt;

    size_t idx = order_[cursor_];
    ++cursor_;
    if (cursor_ == n_) {
        cursor_ = 0;
        if (policy_ == SchedulePolicy::Random)
            reshuffle();
    }
    ++dispatched_;
    return idx;
}

} // namespace vega::runtime
