/**
 * @file
 * Test-suite serialization.
 *
 * The paper's §6.3 envisions a commercial setting where chip
 * manufacturers generate test suites and ship them to data center
 * operators. This module provides the interchange format: a
 * line-oriented, human-auditable text encoding of test cases that
 * carries the module-level stimulus and expected results; programs are
 * recompiled (and re-verified against the golden model) on load.
 *
 * Suites cross an organization boundary, so the loader is hardened:
 * truncated, garbage, or field-swapped files come back as Expected
 * errors with line context — never an uncaught exception or an abort.
 */
#pragma once

#include <string>
#include <vector>

#include "common/error.h"
#include "runtime/test_case.h"

namespace vega::runtime {

/** Render @p suite in the interchange format. */
std::string serialize_suite(const std::vector<TestCase> &suite);

/**
 * Parse a serialized suite; finalizes (compiles + golden-verifies)
 * every test. Malformed text is a ParseError with a line number; a
 * test that violates the compilation limits or fails on the golden
 * model is a ValidationError naming the test.
 */
Expected<std::vector<TestCase>>
try_deserialize_suite(const std::string &text);

/**
 * Throwing wrapper around try_deserialize_suite: raises
 * std::runtime_error with the rendered error. Prefer
 * try_deserialize_suite on untrusted input.
 */
std::vector<TestCase> deserialize_suite(const std::string &text);

} // namespace vega::runtime
