/**
 * @file
 * Test-suite serialization.
 *
 * The paper's §6.3 envisions a commercial setting where chip
 * manufacturers generate test suites and ship them to data center
 * operators. This module provides the interchange format: a
 * line-oriented, human-auditable text encoding of test cases that
 * carries the module-level stimulus and expected results; programs are
 * recompiled (and re-verified against the golden model) on load.
 */
#pragma once

#include <string>
#include <vector>

#include "runtime/test_case.h"

namespace vega::runtime {

/** Render @p suite in the interchange format. */
std::string serialize_suite(const std::vector<TestCase> &suite);

/**
 * Parse a serialized suite; finalizes (compiles + golden-verifies)
 * every test. Throws std::runtime_error on malformed input.
 */
std::vector<TestCase> deserialize_suite(const std::string &text);

} // namespace vega::runtime
