/**
 * @file
 * The software aging library (§3.4.1): Vega's generated test cases
 * packaged behind an application-facing API with pluggable scheduling
 * and failure handling — the "invoke a library" integration path.
 *
 * Execution goes through an Engine so the same library runs on the host
 * deployment target (here: the golden ISS, standing in for native inline
 * asm) and on the evaluation targets (ISS + failing gate-level netlist).
 * generate_c_source() renders the library as a self-contained C file
 * with inline assembly, the artifact the paper's workflow emits.
 */
#pragma once

#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/scheduler.h"
#include "runtime/test_case.h"

namespace vega::runtime {

/** Thrown by the exception-policy library on a detected fault. */
class HardwareFaultError : public std::runtime_error
{
  public:
    HardwareFaultError(std::string test_name, Detection detection)
        : std::runtime_error("aging-related hardware fault detected by " +
                             test_name + " (" +
                             detection_name(detection) + ")"),
          test_name_(std::move(test_name)), detection_(detection)
    {
    }

    const std::string &test_name() const { return test_name_; }
    Detection detection() const { return detection_; }

  private:
    std::string test_name_;
    Detection detection_;
};

/** Executes one test block on some target. */
class Engine
{
  public:
    virtual ~Engine() = default;
    virtual Detection run(const TestCase &tc) = 0;
};

/** Runs blocks on the golden ISS (the healthy deployment target). */
class GoldenEngine : public Engine
{
  public:
    Detection run(const TestCase &tc) override;
};

struct AgingLibraryOptions
{
    SchedulePolicy policy = SchedulePolicy::Sequential;
    double probability = 1.0;
    uint64_t seed = 1;
    /** Throw HardwareFaultError instead of returning the detection. */
    bool throw_on_detect = false;
};

class AgingLibrary
{
  public:
    AgingLibrary(std::vector<TestCase> suite, AgingLibraryOptions options);

    /**
     * Share a caller-owned read-only suite instead of copying it. Wave
     * campaigns instantiate one library per lane per wave; 64 suite
     * copies per wave would dwarf the actual work. @p suite must be
     * non-null, non-empty, and outlive the library.
     */
    AgingLibrary(const std::vector<TestCase> *suite,
                 AgingLibraryOptions options);

    size_t num_tests() const { return suite().size(); }
    const std::vector<TestCase> &suite() const
    {
        return shared_ ? *shared_ : suite_;
    }
    const AgingLibraryOptions &options() const { return options_; }

    /** Total cycles of one full sequential pass. */
    uint64_t suite_cycles() const;

    /**
     * Run the next scheduled test on @p engine. Returns Detection::None
     * for a pass or a skipped slot.
     */
    Detection run_next(Engine &engine);

    /** One full pass over every test; returns the first detection. */
    Detection run_all(Engine &engine);

    /// @name Split run_next for callers that execute tests themselves
    ///
    /// The wave driver cannot hand the library an Engine — a lane's
    /// test executes across many shared batch rounds — so it claims
    /// the slot here and reports the outcome when the test finishes.
    /// schedule_next() + record_result() is exactly run_next() with
    /// the execution lifted out.
    /// @{

    /** Claim the next scheduler slot: the test index to run, or
     *  nullopt for a skipped slot. Counts the dispatch. */
    std::optional<size_t> schedule_next();

    /** Account a test claimed via schedule_next() finishing with
     *  @p det (throws under the exception policy, like run_next). */
    Detection record_result(size_t index, Detection det);
    /// @}

    uint64_t runs() const { return runs_; }
    uint64_t detections() const { return detections_; }

    /** Render the §3.4.1 C file: inline-asm tests + helpers. */
    std::string generate_c_source() const;

  private:
    Detection dispatch(Engine &engine, size_t index);

    std::vector<TestCase> suite_;
    AgingLibraryOptions options_;
    const std::vector<TestCase> *shared_ = nullptr;
    Scheduler scheduler_;
    uint64_t runs_ = 0;
    uint64_t detections_ = 0;
};

} // namespace vega::runtime
