/**
 * @file
 * Software-executable aging test cases (the product of Error Lifting and
 * the unit of the §3.4.1 aging library).
 *
 * A test case carries both views of the same stimulus:
 *  - the module-level view (one ModuleStep per clock cycle, straight from
 *    the formal trace) used for netlist-level validation, and
 *  - the software view: a self-contained RISC-V instruction block that
 *    preloads operands, issues the ops back-to-back so the module sees
 *    the exact trace timing, and compares every observable result. The
 *    block leaves x31 = 0 on pass, 1 on detected corruption.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.h"
#include "cpu/isa.h"
#include "rtl/module.h"

namespace vega::runtime {

/** One cycle of module-level stimulus. */
struct ModuleStep
{
    uint32_t a = 0;
    uint32_t b = 0;
    uint32_t op = 0;
    bool valid = true;  ///< FPU only: an operation issues this cycle
    bool clear = false; ///< FPU only: fflags clear pulses this cycle
};

/** Expected result of the op issued at stimulus step @p step. */
struct ResultCheck
{
    size_t step = 0;
    uint32_t expected = 0;
    /** FPU comparison ops deliver their bit to an integer register. */
    bool to_xreg = false;
};

struct TestCase
{
    std::string name;
    ModuleKind module = ModuleKind::Alu32;
    std::vector<ModuleStep> stimulus;
    std::vector<ResultCheck> checks;
    /** FPU: compare fflags after the block against this value. */
    bool check_final_flags = false;
    uint8_t expected_flags = 0;

    /** The compiled software block (ends in Halt; x31 = fail flag). */
    std::vector<cpu::Instr> program;
    /** CPU cycles of one passing execution (Table 5's metric). */
    uint64_t cycle_cost = 0;

    /** Which STA endpoint pair this test targets (-1 = none). */
    int pair_index = -1;
    /** Failure-model configuration, e.g. "C=1,rise". */
    std::string config;

    /** RISC-V assembly rendering of the block (§3.4.1's inline asm). */
    std::string assembly() const { return cpu::render_asm(program); }
};

/** Compilation limits a test case must satisfy (register plan). */
constexpr size_t kMaxTestSteps = 8;        ///< per-step result registers
constexpr size_t kMaxDistinctOperands = 14; ///< operand pool registers

/**
 * Memory-substrate test cases (ModuleKind::MemDec16) reuse ModuleStep
 * with a march encoding instead of the functional-unit one: `a` is the
 * row index, `op` is a march operation (0 = r0, 1 = r1, 2 = w0,
 * 3 = w1), `b` is unused. The compiled block is straight-line — every
 * operation touches one word cell and reads self-check against the
 * solid background — so march tests escape the 8-step FU register plan
 * and get their own, much larger, step budget.
 */
constexpr size_t kMaxMemTestSteps = 1024;
constexpr uint32_t kMemTestRows = 16; ///< rows of the MemDec16 macro
constexpr uint32_t kNumMarchOps = 4;

/**
 * Check @p tc against the compilation limits and per-module op
 * encodings *before* compiling it: step count, distinct operand count,
 * check indices, and op ranges. Untrusted suites (suite_io) must pass
 * this so the program builders' internal invariants cannot fire.
 */
Expected<void> validate_test_case(const TestCase &tc);

/**
 * Compile stimulus+checks into the software block, then run it on the
 * golden ISS to (a) assert it passes on healthy hardware and (b) fill in
 * cycle_cost. Panics if the block cannot pass on a healthy machine.
 */
void finalize_test_case(TestCase &tc);

/**
 * Non-aborting finalize_test_case: validation failures and tests that
 * stall or fail on the golden model come back as ValidationError
 * instead of panicking. This is the path untrusted suites go through.
 */
Expected<void> try_finalize_test_case(TestCase &tc);

/** How a test run terminated. */
enum class Detection {
    None,         ///< everything matched: hardware looks healthy
    Mismatch,     ///< a compare failed (x31 set)
    Stall,        ///< handshake never completed; watchdog fired
    TagAnomaly,   ///< transaction-tag parity error (hardware-detected)
    WrongAddress, ///< march test caught an address-decoder fault (x31 set)
};

const char *detection_name(Detection d);

} // namespace vega::runtime
